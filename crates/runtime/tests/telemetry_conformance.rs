//! Telemetry/witness conformance: the executor's telemetry spans must
//! tell the same story as the execution witness.
//!
//! Executor spans are stamped with the *virtual* clock — the same clock
//! the witness records — so every witnessed subgraph dispatch must have
//! exactly one matching `ExecSubgraph` span (same subgraph, device,
//! start and finish), and span order must agree with the witness's
//! happens-before relation: a consumer's span may not start before the
//! spans of the producers that trigger it have finished, and spans on
//! one device may not overlap.
//!
//! This lives in its own integration-test binary (one process, one test
//! function) because the span ring is process-global.

use duet_compiler::Compiler;
use duet_device::{DeviceKind, SystemModel};
use duet_models::{input_feeds, wide_and_deep, WideAndDeepConfig};
use duet_runtime::{HeterogeneousExecutor, Placed, WitnessEvent};
use duet_telemetry::{Span, SpanKind};

/// Contiguous topo chunks on alternating devices (always valid).
fn chunked(graph: &duet_ir::Graph, k: usize) -> Vec<Placed> {
    let c = Compiler::default();
    let ids = graph.compute_ids();
    let chunk = ids.len().div_ceil(k.clamp(1, ids.len()));
    ids.chunks(chunk)
        .enumerate()
        .map(|(i, nodes)| Placed {
            sg: c.compile_nodes(graph, nodes, format!("c{i}")),
            device: if i % 2 == 0 {
                DeviceKind::Cpu
            } else {
                DeviceKind::Gpu
            },
        })
        .collect()
}

#[test]
fn executor_spans_agree_with_witness_happens_before() {
    duet_telemetry::set_enabled(true);
    // Shrunk so the numerics finish quickly in debug builds; the graph
    // still has parallel branches, so cross-device trigger edges exist.
    let graph = wide_and_deep(&WideAndDeepConfig {
        batch: 1,
        wide_features: 32,
        deep_features: 16,
        ffn_hidden: 16,
        ffn_layers: 2,
        seq_len: 4,
        embed_dim: 8,
        rnn_hidden: 8,
        rnn_layers: 1,
        cnn_depth: 18,
        image: 8,
        ..WideAndDeepConfig::default()
    });
    let placed = chunked(&graph, 6);
    let feeds = input_feeds(&graph, 42);
    let exec = HeterogeneousExecutor::new(&graph, &placed, SystemModel::paper_server());

    duet_telemetry::reset_spans();
    let (_, witness) = exec.run_witnessed(&feeds).expect("run succeeds");
    let spans: Vec<Span> = duet_telemetry::spans()
        .into_iter()
        .filter(|s| s.kind == SpanKind::ExecSubgraph)
        .collect();

    // One span per witnessed dispatch, with identical virtual times.
    let mut matched = 0usize;
    for ev in &witness.events {
        let WitnessEvent::Start {
            sg, device, at_us, ..
        } = ev
        else {
            continue;
        };
        let finish = witness
            .events
            .iter()
            .find_map(|e| match e {
                WitnessEvent::Finish {
                    sg: s, at_us: f, ..
                } if s == sg => Some(*f),
                _ => None,
            })
            .expect("every start has a finish");
        let matches: Vec<&Span> = spans.iter().filter(|s| s.detail == *sg as u64).collect();
        assert_eq!(matches.len(), 1, "exactly one span for subgraph {sg}");
        let span = matches[0];
        assert_eq!(
            span.start_us, *at_us,
            "sg {sg}: span start == witness start"
        );
        assert_eq!(
            span.start_us + span.dur_us,
            finish,
            "sg {sg}: span end == witness finish"
        );
        assert_eq!(
            span.arg0 as usize, *device as usize,
            "sg {sg}: span device == witness device"
        );
        matched += 1;
    }
    assert_eq!(matched, placed.len(), "every subgraph was witnessed");
    assert_eq!(spans.len(), placed.len(), "no spurious executor spans");

    // Happens-before: a consumer span starts no earlier than every
    // triggering producer's span ends (the witness's triggering edges
    // are the dependency order the checker verifies).
    let span_of = |sg: usize| spans.iter().find(|s| s.detail == sg as u64).unwrap();
    let mut edges = 0usize;
    for ev in &witness.events {
        let WitnessEvent::Start { sg, triggers, .. } = ev else {
            continue;
        };
        for t in triggers {
            let Some(producer) = t.producer else { continue };
            let p = span_of(producer);
            let c = span_of(*sg);
            assert!(
                p.start_us + p.dur_us <= c.start_us + 1e-9,
                "span order violates happens-before: producer {producer} ends at \
                 {} but consumer {sg} starts at {}",
                p.start_us + p.dur_us,
                c.start_us
            );
            edges += 1;
        }
    }
    assert!(edges > 0, "the model has cross-subgraph dependencies");

    // Per-device serialization: spans on one device never overlap, and
    // recording order (seq) matches virtual start order per device.
    for device in [0.0, 1.0] {
        let mut on_device: Vec<&Span> = spans.iter().filter(|s| s.arg0 == device).collect();
        on_device.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        for pair in on_device.windows(2) {
            assert!(
                pair[0].start_us + pair[0].dur_us <= pair[1].start_us + 1e-9,
                "device {device} spans overlap"
            );
            assert!(
                pair[0].seq < pair[1].seq,
                "device {device} recording order disagrees with virtual time"
            );
        }
    }

    // The run-level span carries the end-to-end virtual latency.
    let runs: Vec<Span> = duet_telemetry::spans()
        .into_iter()
        .filter(|s| s.kind == SpanKind::ExecRun)
        .collect();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].detail, placed.len() as u64);
    assert_eq!(runs[0].dur_us, witness.virtual_latency_us);
}
