//! Request coalescing: merge batch-1 request feeds into one batch-`B`
//! execution, split the batched outputs back per request.
//!
//! Every kernel in the runtime is row-independent along the batch axis
//! (blocked GEMM rows, per-sample im2col convolution, per-row softmax,
//! per-sequence LSTM lanes), so the batched execution computes *exactly*
//! the same floating-point operations in the same order per sample as a
//! batch-1 run — merged outputs are bit-identical to individual runs,
//! which `split_outputs` relies on and the crate's tests pin down.

use std::collections::HashMap;

use duet_ir::{Graph, NodeId};
use duet_tensor::kernels::{concat, split};
use duet_tensor::Tensor;

use crate::spec::batch_axis;
use crate::ServeError;

/// Merge `requests` (batch-1 feeds keyed by input label) into feeds for
/// `graph` (the optimized batch-`requests.len()` graph), keyed by its
/// node ids.
pub fn merge_feeds(
    graph: &Graph,
    requests: &[&HashMap<String, Tensor>],
) -> Result<HashMap<NodeId, Tensor>, ServeError> {
    assert!(!requests.is_empty(), "cannot merge zero requests");
    let mut feeds = HashMap::new();
    for id in graph.input_ids() {
        let node = graph.node(id);
        let axis = batch_axis(&node.label);
        let mut parts: Vec<&Tensor> = Vec::with_capacity(requests.len());
        for r in requests {
            let t = r.get(&node.label).ok_or_else(|| ServeError::MissingInput {
                label: node.label.clone(),
            })?;
            if t.shape().rank() <= axis || t.shape().dim(axis) != 1 {
                return Err(ServeError::BadShape {
                    label: node.label.clone(),
                    msg: format!(
                        "request feed must have batch extent 1 on axis {axis}, got {:?}",
                        t.shape().dims()
                    ),
                });
            }
            parts.push(t);
        }
        let merged = concat(&parts, axis).map_err(|e| ServeError::BadShape {
            label: node.label.clone(),
            msg: e.to_string(),
        })?;
        if merged.shape() != &node.shape {
            return Err(ServeError::BadShape {
                label: node.label.clone(),
                msg: format!(
                    "merged feed {:?} does not match graph input {:?}",
                    merged.shape().dims(),
                    node.shape.dims()
                ),
            });
        }
        feeds.insert(id, merged);
    }
    Ok(feeds)
}

/// Split batched outputs (keyed by node id of the batch-`parts` graph)
/// into one label-keyed map per request. Outputs are batch-major, so the
/// split is always along axis 0.
pub fn split_outputs(
    graph: &Graph,
    outputs: &HashMap<NodeId, Tensor>,
    parts: usize,
) -> Result<Vec<HashMap<String, Tensor>>, ServeError> {
    let mut per_request: Vec<HashMap<String, Tensor>> = vec![HashMap::new(); parts];
    for &id in graph.outputs() {
        let label = graph.node(id).label.clone();
        let t = outputs
            .get(&id)
            .ok_or_else(|| ServeError::Exec(format!("executor returned no output for {label}")))?;
        let chunks = split(t, parts, 0).map_err(|e| ServeError::Exec(e.to_string()))?;
        for (req, chunk) in per_request.iter_mut().zip(chunks) {
            req.insert(label.clone(), chunk);
        }
    }
    Ok(per_request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ModelSpec;

    #[test]
    fn merge_then_eval_then_split_is_bit_identical_to_individual_runs() {
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let g2 = spec.graph_at(2);
        let reqs: Vec<HashMap<String, Tensor>> =
            (0..2).map(|s| spec.request_feeds(100 + s)).collect();
        let refs: Vec<&HashMap<String, Tensor>> = reqs.iter().collect();
        let feeds = merge_feeds(&g2, &refs).unwrap();
        let out = g2.eval(&feeds).unwrap();
        let outputs: HashMap<NodeId, Tensor> = g2.outputs().iter().copied().zip(out).collect();
        let pieces = split_outputs(&g2, &outputs, 2).unwrap();

        let g1 = spec.reference();
        for (req, piece) in reqs.iter().zip(&pieces) {
            let solo_feeds = merge_feeds(g1, &[req]).unwrap();
            let solo = g1.eval(&solo_feeds).unwrap();
            for (&oid, got) in g1.outputs().iter().zip(&solo) {
                let label = &g1.node(oid).label;
                assert_eq!(&piece[label], got, "output {label} not bit-identical");
            }
        }
    }

    #[test]
    fn text_inputs_merge_on_the_sequence_minor_axis() {
        let spec = ModelSpec::serving_zoo("siamese").unwrap();
        let g3 = spec.graph_at(3);
        let reqs: Vec<HashMap<String, Tensor>> = (0..3).map(|s| spec.request_feeds(s)).collect();
        let refs: Vec<&HashMap<String, Tensor>> = reqs.iter().collect();
        let feeds = merge_feeds(&g3, &refs).unwrap();
        for id in g3.input_ids() {
            assert_eq!(feeds[&id].shape(), &g3.node(id).shape);
        }
    }

    #[test]
    fn missing_input_is_reported_by_label() {
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let g = spec.graph_at(1);
        let empty = HashMap::new();
        match merge_feeds(&g, &[&empty]) {
            Err(ServeError::MissingInput { label }) => assert_eq!(label, "x"),
            other => panic!("expected MissingInput, got {other:?}"),
        }
    }

    #[test]
    fn wrong_batch_extent_is_rejected() {
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let g = spec.graph_at(1);
        let mut req = spec.request_feeds(1);
        let fat = Tensor::zeros(vec![2, 256]);
        req.insert("x".into(), fat);
        assert!(matches!(
            merge_feeds(&g, &[&req]),
            Err(ServeError::BadShape { .. })
        ));
    }
}
