//! `duet-serve` — load generator and end-to-end verifier for the DUET
//! online-serving runtime.
//!
//! Runs Poisson (open-loop) or closed-loop traffic against a freshly
//! registered model, optionally injects a degraded system model at half
//! duration (the drift scenario), then verifies:
//!
//! * every submitted request was answered (no wedged server);
//! * sampled batched outputs are bit-identical to direct batch-1 runs;
//! * a witnessed request passes the D3xx runtime-conformance checks;
//! * under drift: exactly one plan hot-swap fired and the post-swap
//!   per-request virtual P50 beats the drifted (stale-plan) P50.
//!
//! Exit codes: 0 ok, 2 usage, 3 wedged/deadlock, 4 drift verification
//! failed, 5 bit-identity failed, 6 witness conformance failed, 7 shed
//! under `--require-zero-shed`, 8 attribution segments failed to sum to
//! the measured sojourn.

// The report `json!` literal is wide enough to exhaust the default
// macro recursion limit of the vendored serde_json.
#![recursion_limit = "512"]

use std::path::PathBuf;
use std::time::Duration;

use duet_device::SystemModel;
use duet_serve::loadgen::degraded_gpu;
use duet_serve::{
    LoadGen, LoadGenConfig, LoadReport, ModelSpec, ServeConfig, ServeServer, SloConfig,
};

struct Args {
    model: String,
    qps: f64,
    duration_ms: u64,
    max_batch: usize,
    linger_us: u64,
    queue_cap: usize,
    sla_ms: Option<u64>,
    seed: u64,
    drift: bool,
    tune_on_drift: bool,
    closed: Option<usize>,
    require_zero_shed: bool,
    json: bool,
    metrics_addr: Option<String>,
    metrics_out: Option<String>,
    slo_us: Option<f64>,
    slo_window: usize,
    slo_burn: usize,
    flight_dir: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            model: "wide_deep".into(),
            qps: 200.0,
            duration_ms: 2000,
            max_batch: 8,
            linger_us: 2000,
            queue_cap: 256,
            sla_ms: None,
            seed: 0x10ad,
            drift: true,
            tune_on_drift: false,
            closed: None,
            require_zero_shed: false,
            json: false,
            metrics_addr: None,
            metrics_out: None,
            slo_us: None,
            slo_window: 64,
            slo_burn: 8,
            flight_dir: None,
        }
    }
}

const USAGE: &str = "duet-serve — DUET online-serving load generator

USAGE: duet-serve [OPTIONS]

OPTIONS:
  --model NAME          model to serve: wide_deep | mlp | siamese (default wide_deep)
  --qps RATE            open-loop Poisson arrival rate (default 200)
  --duration-ms MS      load generation window (default 2000)
  --max-batch N         dynamic batcher ceiling (default 8)
  --linger-us US        batching linger window (default 2000)
  --queue-cap N         admission queue bound (default 256)
  --sla-ms MS           per-request SLA budget (default: none)
  --seed N              arrival/content seed (default 0x10ad)
  --no-drift            skip the half-time degraded-system injection
  --tune-on-drift       answer confirmed drift with the duet-tune
                        autotuner instead of recorrection alone
  --closed N            closed-loop mode with N workers instead of Poisson
  --require-zero-shed   fail (exit 7) if any request was shed
  --json                print the report as JSON too
  --metrics-addr ADDR   serve Prometheus text exposition at http://ADDR/metrics
                        (e.g. 127.0.0.1:9464; port 0 picks a free port)
  --metrics-out FILE    dump the final Prometheus exposition to FILE on exit
  --slo US              per-request sojourn SLO in microseconds; breaches are
                        counted and a burn fires the flight recorder
  --slo-window N        sliding window for SLO burn detection (default 64)
  --slo-burn N          breaches within the window that constitute a burn
                        (default 8)
  --flight-dir DIR      write an anomaly-triggered flight dump (last traces +
                        metrics + plan + witness) under DIR, at most once
  --help                this text";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--model" => args.model = val("--model")?,
            "--qps" => args.qps = val("--qps")?.parse().map_err(|e| format!("--qps: {e}"))?,
            "--duration-ms" => {
                args.duration_ms = val("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = val("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?
            }
            "--linger-us" => {
                args.linger_us = val("--linger-us")?
                    .parse()
                    .map_err(|e| format!("--linger-us: {e}"))?
            }
            "--queue-cap" => {
                args.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--sla-ms" => {
                args.sla_ms = Some(
                    val("--sla-ms")?
                        .parse()
                        .map_err(|e| format!("--sla-ms: {e}"))?,
                )
            }
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--no-drift" => args.drift = false,
            "--tune-on-drift" => args.tune_on_drift = true,
            "--closed" => {
                args.closed = Some(
                    val("--closed")?
                        .parse()
                        .map_err(|e| format!("--closed: {e}"))?,
                )
            }
            "--require-zero-shed" => args.require_zero_shed = true,
            "--json" => args.json = true,
            "--metrics-addr" => args.metrics_addr = Some(val("--metrics-addr")?),
            "--metrics-out" => args.metrics_out = Some(val("--metrics-out")?),
            "--slo" => {
                args.slo_us = Some(val("--slo")?.parse().map_err(|e| format!("--slo: {e}"))?)
            }
            "--slo-window" => {
                args.slo_window = val("--slo-window")?
                    .parse()
                    .map_err(|e| format!("--slo-window: {e}"))?
            }
            "--slo-burn" => {
                args.slo_burn = val("--slo-burn")?
                    .parse()
                    .map_err(|e| format!("--slo-burn: {e}"))?
            }
            "--flight-dir" => args.flight_dir = Some(PathBuf::from(val("--flight-dir")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.max_batch == 0 || args.qps <= 0.0 || args.duration_ms == 0 {
        return Err("--max-batch, --qps and --duration-ms must be positive".into());
    }
    Ok(args)
}

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(code)
}

fn print_report(model: &str, report: &LoadReport) {
    let s = &report.snapshot;
    println!("== duet-serve report: {model} ==");
    println!(
        "traffic   offered {} | accepted {} | completed {} | errors {} | throughput {:.1} qps",
        report.offered, report.accepted, s.completed, report.error_responses, report.throughput_qps
    );
    println!(
        "shedding  queue-full {} | expired {} | undrained {}",
        s.shed_queue_full, s.shed_expired, report.undrained
    );
    let hist: Vec<String> = s
        .batch_histogram
        .iter()
        .map(|(b, n)| format!("{b}x{n}"))
        .collect();
    println!(
        "batching  batches {} | mean size {:.2} | histogram [{}]",
        s.batches_executed,
        s.mean_batch(),
        hist.join(", ")
    );
    // Per-phase latency attribution replaces the old single end-to-end
    // sojourn line: each completed request's wall time is decomposed
    // into queue/linger/compute/transfer/overhead segments server-side.
    if report.attribution.requests > 0 {
        print!("{}", report.attribution.render_table());
    }
    if let Some(w) = &s.sojourn {
        println!(
            "sojourn   total wall P50 {:.2} ms | P99 {:.2} ms | max {:.2} ms",
            w.p50() / 1e3,
            w.p99() / 1e3,
            w.max() / 1e3
        );
    }
    if let Some(v) = &s.virtual_service {
        println!(
            "service   virtual per-request P50 {:.1} us | P99 {:.1} us",
            v.p50(),
            v.p99()
        );
    }
    println!(
        "feedback  plan swaps {} | epoch {} | drifted-epoch P50 {} | post-swap P50 {}",
        s.plan_swaps,
        s.epoch,
        report
            .drift_epoch_p50_us
            .map_or("-".into(), |v| format!("{v:.1} us")),
        report
            .post_swap_epoch_p50_us
            .map_or("-".into(), |v| format!("{v:.1} us")),
    );
    let (checked, failures, max_batch) = report.verified;
    println!(
        "verify    bit-identity {checked} checked ({failures} failed, largest batch {max_batch})"
    );
}

fn json_report(model: &str, report: &LoadReport, witness_clean: bool) -> String {
    let s = &report.snapshot;
    let hist: Vec<serde_json::Value> = s
        .batch_histogram
        .iter()
        .map(|(b, n)| serde_json::json!({ "batch": b, "count": n }))
        .collect();
    serde_json::json!({
        "model": model,
        "offered": report.offered,
        "accepted": report.accepted,
        "completed": s.completed,
        "errors": report.error_responses,
        "throughput_qps": report.throughput_qps,
        "shed_queue_full": s.shed_queue_full,
        "shed_expired": s.shed_expired,
        "undrained": report.undrained,
        "batches": s.batches_executed,
        "mean_batch": s.mean_batch(),
        "batch_histogram": hist,
        "sojourn_p50_us": s.sojourn.as_ref().map(|w| w.p50()),
        "sojourn_p99_us": s.sojourn.as_ref().map(|w| w.p99()),
        "attribution": report.attribution,
        "attribution_mismatches": report.attribution_mismatches,
        "virtual_service_p50_us": s.virtual_service.as_ref().map(|v| v.p50()),
        "virtual_service_p99_us": s.virtual_service.as_ref().map(|v| v.p99()),
        "plan_swaps": s.plan_swaps,
        "drift_injected": report.drift_injected,
        "baseline_epoch_p50_us": report.baseline_epoch_p50_us,
        "drift_epoch_p50_us": report.drift_epoch_p50_us,
        "post_swap_epoch_p50_us": report.post_swap_epoch_p50_us,
        "verified": {
            "checked": report.verified.0,
            "failures": report.verified.1,
            "largest_batch": report.verified.2,
        },
        "witness_clean": witness_clean,
    })
    .to_string()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some(spec) = ModelSpec::serving_zoo(&args.model) else {
        eprintln!(
            "error: unknown model {:?} (try wide_deep, mlp, siamese)",
            args.model
        );
        std::process::exit(2);
    };
    let model = spec.name().to_string();
    let system = SystemModel::paper_server();

    if let Some(addr) = &args.metrics_addr {
        match duet_telemetry::export::serve_metrics(addr) {
            Ok(bound) => eprintln!("metrics exposition at http://{bound}/metrics"),
            Err(e) => {
                eprintln!("error: cannot bind --metrics-addr {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut server = ServeServer::new(ServeConfig {
        max_batch: args.max_batch,
        linger: Duration::from_micros(args.linger_us),
        queue_cap: args.queue_cap,
        tune_on_drift: args.tune_on_drift,
        slo: args.slo_us.map(|limit_us| SloConfig {
            limit_us,
            window: args.slo_window,
            burn_threshold: args.slo_burn,
        }),
        flight_dir: args.flight_dir.clone(),
        ..ServeConfig::default()
    });
    eprintln!(
        "building engines for {model} (batch 1 + {})...",
        args.max_batch
    );
    server.register(spec, system.clone());

    let gen = LoadGen::new(LoadGenConfig {
        qps: args.qps,
        duration: Duration::from_millis(args.duration_ms),
        seed: args.seed,
        sla: args.sla_ms.map(Duration::from_millis),
        closed_workers: args.closed,
        drift: args.drift.then(|| degraded_gpu(&system)),
        verify_samples: 8,
        drain_timeout: Duration::from_secs(30),
    });
    eprintln!(
        "running {} load: {:.0} qps for {} ms (drift {})...",
        if args.closed.is_some() {
            "closed-loop"
        } else {
            "open-loop Poisson"
        },
        args.qps,
        args.duration_ms,
        if args.drift { "on at half-time" } else { "off" },
    );
    let report = match gen.run(&server, &model) {
        Ok(r) => r,
        Err(e) => fail(3, &format!("load run failed: {e}")),
    };

    // Runtime conformance on a fresh witnessed request.
    let witness = match server.witness_check(&model, args.seed ^ 0x3157) {
        Ok(r) => r,
        Err(e) => fail(6, &format!("witness run failed: {e}")),
    };

    print_report(&model, &report);
    if args.json {
        println!("{}", json_report(&model, &report, witness.is_clean()));
    }
    if let Some(path) = &args.metrics_out {
        match std::fs::write(path, duet_telemetry::prometheus_text()) {
            Ok(()) => eprintln!("metrics exposition dumped to {path}"),
            Err(e) => fail(3, &format!("cannot write --metrics-out {path}: {e}")),
        }
    }

    // ---- hard verifications ----
    if report.undrained > 0 {
        fail(
            3,
            &format!(
                "{} requests never completed — server wedged",
                report.undrained
            ),
        );
    }
    let (checked, failures, _) = report.verified;
    if checked == 0 {
        fail(5, "no responses available for bit-identity verification");
    }
    if failures > 0 {
        fail(
            5,
            &format!("{failures}/{checked} sampled responses differ from reference runs"),
        );
    }
    if !witness.is_clean() {
        fail(6, &format!("witness conformance errors:\n{witness}"));
    }
    if report.drift_injected {
        let swaps = report.snapshot.plan_swaps;
        // A model placed entirely on the undegraded device never sees
        // the injection: measured latency stays at baseline and the
        // monitor rightly never fires. Only models the injection
        // actually perturbed must produce exactly one corrective swap.
        let perturbed = match (report.baseline_epoch_p50_us, report.drift_epoch_p50_us) {
            (Some(base), Some(stale)) => stale > base * 1.35,
            _ => swaps > 0,
        };
        if !perturbed && swaps == 0 {
            println!(
                "drift     injection did not move this model's measured latency (placement avoids the degraded device); swap verification skipped"
            );
        } else {
            if swaps != 1 {
                fail(
                    4,
                    &format!("expected exactly one plan hot-swap, saw {swaps}"),
                );
            }
            match (report.drift_epoch_p50_us, report.post_swap_epoch_p50_us) {
                (Some(stale), Some(fresh)) if fresh < stale => {
                    println!(
                        "drift     hot-swap lowered per-request virtual P50: {stale:.1} -> {fresh:.1} us ({:.2}x)",
                        stale / fresh
                    );
                }
                (stale, fresh) => fail(
                    4,
                    &format!(
                        "hot-swap did not lower P50 (stale {stale:?}, post-swap {fresh:?} us)"
                    ),
                ),
            }
        }
    }
    if args.require_zero_shed && report.snapshot.shed() + report.shed_at_submit > 0 {
        fail(
            7,
            &format!(
                "shed under --require-zero-shed: queue-full {} expired {}",
                report.snapshot.shed_queue_full, report.snapshot.shed_expired
            ),
        );
    }
    if report.attribution_mismatches > 0 {
        fail(
            8,
            &format!(
                "{} responses had attribution segments that do not sum to the measured sojourn (>5% off)",
                report.attribution_mismatches
            ),
        );
    }
    if let Some(dump) = server.flight(&model).and_then(|f| f.last_dump()) {
        println!(
            "flight    anomaly dump written to {} (inspect with `duet insight render`)",
            dump.display()
        );
    }
    println!("OK");
}
