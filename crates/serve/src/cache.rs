//! Engine registry internals: the per-model plan cache and the atomic
//! publication cell the feedback loop swaps plans through.
//!
//! A serving process keeps one compiled engine per (model, batch) —
//! Fig. 17's occupancy curves mean the batch-16 placement is not the
//! batch-1 placement — built lazily the first time the dynamic batcher
//! forms a batch of that size, then reused for the lifetime of the
//! deployment (the paper's "profiling is only done during the offline
//! phase" amortization argument, applied per variant).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use duet_analysis::{check_plan_model, ModelCheckConfig, PlanModel};
use duet_core::{Duet, SchedulePlan};
use duet_device::SystemModel;
use parking_lot::{Mutex, RwLock};

use crate::spec::ModelSpec;

/// A test hook that perturbs a re-corrected plan's model before the
/// hot-swap gate checks it (chaos injection for the refusal path).
type SwapChaos = Box<dyn Fn(&mut PlanModel) + Send + Sync>;

/// An `arc-swap`-style publication cell: readers `load` a cheap `Arc`
/// clone, writers `store` a whole new value. Readers never observe a
/// partially updated value, and a stored value stays alive until the
/// last reader drops its `Arc` — exactly what a plan hot-swap needs.
#[derive(Debug)]
pub struct ArcCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    pub fn new(value: T) -> Self {
        ArcCell {
            inner: RwLock::new(Arc::new(value)),
        }
    }

    /// Snapshot the current value.
    pub fn load(&self) -> Arc<T> {
        self.inner.read().clone()
    }

    /// Atomically publish a new value.
    pub fn store(&self, value: Arc<T>) {
        *self.inner.write() = value;
    }
}

/// One compiled, scheduled engine for a specific batch size, plus its
/// exported plan (the deployable artifact).
#[derive(Debug)]
pub struct EngineVariant {
    pub batch: usize,
    pub duet: Duet,
    pub plan: SchedulePlan,
}

impl EngineVariant {
    fn from_duet(batch: usize, duet: Duet) -> Self {
        let plan = duet.export_plan();
        EngineVariant { batch, duet, plan }
    }
}

/// Lazy per-batch engine cache for one model.
pub struct PlanCache {
    spec: ModelSpec,
    system: SystemModel,
    /// Profiling repetitions for variant builds (serving builds trade a
    /// little profile fidelity for startup latency).
    profile_runs: (usize, usize),
    slots: Mutex<BTreeMap<usize, Arc<ArcCell<EngineVariant>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    swap_chaos: Mutex<Option<SwapChaos>>,
}

impl PlanCache {
    pub fn new(spec: ModelSpec, system: SystemModel) -> Self {
        PlanCache {
            spec,
            system,
            profile_runs: (120, 12),
            slots: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            swap_chaos: Mutex::new(None),
        }
    }

    /// Install a perturbation applied to every re-corrected plan model
    /// before the D5xx hot-swap gate checks it. Test-only in spirit: it
    /// exists to demonstrate (and regression-test) that a dirty
    /// candidate is refused and the old engine stays published.
    pub fn set_swap_chaos(&self, f: impl Fn(&mut PlanModel) + Send + Sync + 'static) {
        *self.swap_chaos.lock() = Some(Box::new(f));
    }

    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The engine for `batch`, building (and caching) it on first use.
    pub fn get_or_build(&self, batch: usize) -> Arc<EngineVariant> {
        assert!(batch > 0, "batch must be positive");
        let mut slots = self.slots.lock();
        if let Some(cell) = slots.get(&batch) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return cell.load();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let graph = self.spec.graph_at(batch);
        let duet = Duet::builder()
            .system(self.system.clone())
            .profile_runs(self.profile_runs.0, self.profile_runs.1)
            .build(&graph)
            .expect("serving model builds");
        let variant = Arc::new(EngineVariant::from_duet(batch, duet));
        let cell = Arc::new(ArcCell::new_arc(variant.clone()));
        slots.insert(batch, cell);
        variant
    }

    /// Re-run Algorithm 1's correction for every cached variant against
    /// `system` and atomically publish the re-scheduled engines (the
    /// feedback loop's hot swap).
    ///
    /// Every candidate must pass the `D5xx` model check before
    /// publication: a re-corrected plan proven to admit a deadlock, a
    /// nondeterministic dispatch or a transfer race is *refused* and the
    /// currently-published engine keeps serving. Returns
    /// `(swapped, rejected)` variant counts.
    pub fn recorrect_all(&self, system: &SystemModel) -> (usize, usize) {
        let slots = self.slots.lock();
        let chaos = self.swap_chaos.lock();
        let mut swapped = 0;
        let mut rejected = 0;
        for cell in slots.values() {
            let old = cell.load();
            let duet = old.duet.recorrect(system.clone());
            let clean = match duet.plan_model() {
                Ok(mut model) => {
                    if let Some(f) = chaos.as_ref() {
                        f(&mut model);
                    }
                    !check_plan_model(&model, &ModelCheckConfig::default())
                        .report
                        .has_errors()
                }
                Err(_) => false,
            };
            if clean {
                cell.store(Arc::new(EngineVariant::from_duet(old.batch, duet)));
                swapped += 1;
            } else {
                rejected += 1;
            }
        }
        (swapped, rejected)
    }

    /// Like [`PlanCache::recorrect_all`], but each candidate comes from
    /// the full autotuner ([`duet_tune::tune_drifted`]) instead of
    /// Algorithm 1's correction alone: re-correct under `system`, then
    /// search the placement space from that seed. Never worse than the
    /// plain re-correction (the tuner seeds with it), and held to a
    /// *stricter* gate — the tuner's own D2xx+D5xx promotion must accept
    /// the plan *and* the chaos-aware model check used for plain swaps
    /// must pass. Returns `(swapped, rejected)` variant counts.
    pub fn tune_all(&self, system: &SystemModel) -> (usize, usize) {
        let slots = self.slots.lock();
        let chaos = self.swap_chaos.lock();
        let mut swapped = 0;
        let mut rejected = 0;
        // Bounded budget: this runs on the serving worker thread.
        let cfg = duet_tune::TuneConfig {
            budget: 400,
            ..duet_tune::TuneConfig::default()
        };
        for cell in slots.values() {
            let old = cell.load();
            let outcome = duet_tune::tune_drifted(&old.duet, system.clone(), &cfg);
            let clean = outcome.promoted
                && match outcome.tuned.plan_model() {
                    Ok(mut model) => {
                        if let Some(f) = chaos.as_ref() {
                            f(&mut model);
                        }
                        !check_plan_model(&model, &ModelCheckConfig::default())
                            .report
                            .has_errors()
                    }
                    Err(_) => false,
                };
            if clean {
                cell.store(Arc::new(EngineVariant::from_duet(old.batch, outcome.tuned)));
                swapped += 1;
            } else {
                rejected += 1;
            }
        }
        (swapped, rejected)
    }

    /// Batch sizes with a built engine.
    pub fn cached_batches(&self) -> Vec<usize> {
        self.slots.lock().keys().copied().collect()
    }

    /// (cache hits, cache misses — i.e. builds).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl<T> ArcCell<T> {
    fn new_arc(value: Arc<T>) -> Self {
        ArcCell {
            inner: RwLock::new(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> PlanCache {
        PlanCache::new(
            ModelSpec::serving_zoo("mlp").unwrap(),
            SystemModel::paper_server(),
        )
    }

    #[test]
    fn variants_are_built_once_and_reused() {
        let c = cache();
        let a = c.get_or_build(1);
        let b = c.get_or_build(1);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let (hits, misses) = c.counters();
        assert_eq!((hits, misses), (1, 1));
        c.get_or_build(4);
        assert_eq!(c.cached_batches(), vec![1, 4]);
    }

    #[test]
    fn variant_plans_record_their_batch() {
        let c = cache();
        for batch in [1, 2, 8] {
            let v = c.get_or_build(batch);
            assert_eq!(v.batch, batch);
            assert_eq!(v.plan.batch, batch);
            assert_eq!(v.duet.batch(), batch);
            // The exported plan round-trips through the D2xx linter.
            let facts = v.plan.to_facts();
            let lint = duet_analysis::lint_plan(
                v.duet.graph(),
                &facts,
                &duet_analysis::LintConfig::default(),
            );
            assert!(
                !lint.has_errors(),
                "batch {batch} plan lints clean:\n{lint}"
            );
        }
    }

    #[test]
    fn recorrect_all_publishes_new_engines() {
        let c = cache();
        let before = c.get_or_build(2);
        let mut degraded = SystemModel::paper_server();
        degraded.gpu.peak_gflops /= 12.0;
        degraded.gpu.mem_bw_gbps /= 8.0;
        degraded.gpu.kernel_launch_us *= 8.0;
        assert_eq!(c.recorrect_all(&degraded), (1, 0));
        let after = c.get_or_build(2);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "swap must publish a new engine"
        );
        assert_eq!(after.batch, 2);
    }

    #[test]
    fn dirty_recorrected_plan_is_refused() {
        let c = cache();
        let before = c.get_or_build(2);
        // Corrupt every candidate with a self-trigger: subgraph 0 waits
        // on its own finish, a guaranteed D500 deadlock.
        c.set_swap_chaos(|model| model.add_trigger(0, 0));
        let mut degraded = SystemModel::paper_server();
        degraded.gpu.peak_gflops /= 12.0;
        assert_eq!(
            c.recorrect_all(&degraded),
            (0, 1),
            "dirty candidate must be rejected, not swapped"
        );
        let after = c.get_or_build(2);
        assert!(
            Arc::ptr_eq(&before, &after),
            "refused swap keeps the old engine published"
        );
    }

    #[test]
    fn tune_all_publishes_engines_no_worse_than_recorrection() {
        let c = cache();
        let before = c.get_or_build(2);
        let mut degraded = SystemModel::paper_server();
        degraded.gpu.peak_gflops /= 12.0;
        degraded.gpu.mem_bw_gbps /= 8.0;
        degraded.gpu.kernel_launch_us *= 8.0;
        assert_eq!(c.tune_all(&degraded), (1, 0));
        let after = c.get_or_build(2);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "tuned swap must publish a new engine"
        );
        // Compare against what a plain recorrection would have served.
        let replanned = before.duet.recorrect(degraded);
        assert!(
            after.duet.latency_us() <= replanned.latency_us(),
            "tuned plan must be no worse than Algorithm 1's recorrection"
        );
    }

    #[test]
    fn dirty_tuned_plan_is_refused() {
        let c = cache();
        let before = c.get_or_build(2);
        c.set_swap_chaos(|model| model.add_trigger(0, 0));
        let mut degraded = SystemModel::paper_server();
        degraded.gpu.peak_gflops /= 12.0;
        assert_eq!(
            c.tune_all(&degraded),
            (0, 1),
            "dirty tuned candidate must be rejected, not swapped"
        );
        let after = c.get_or_build(2);
        assert!(
            Arc::ptr_eq(&before, &after),
            "refused tuned swap keeps the old engine published"
        );
    }

    #[test]
    fn arc_cell_swaps_atomically_for_held_readers() {
        let cell = ArcCell::new(1u32);
        let reader = cell.load();
        cell.store(Arc::new(2));
        assert_eq!(*reader, 1, "held snapshot survives the swap");
        assert_eq!(*cell.load(), 2);
    }
}
