//! Runtime feedback: detect sustained drift between the plan's predicted
//! latency and what execution actually measures.
//!
//! The scheduler's placements are only as good as the cost model they
//! were corrected against (§IV-C refines on *measured* latency for
//! exactly this reason). In a long-lived serving process the deployed
//! hardware drifts — thermal throttling, a co-tenant stealing PCIe
//! bandwidth, driver regressions — and a placement corrected against the
//! stale model silently loses its advantage. The monitor tracks an EWMA
//! of the ratio `measured / predicted` per executed batch; the ratio is
//! dimensionless, so one model-level monitor covers every batch-size
//! variant. When the EWMA stays above threshold for long enough, the
//! server re-runs Algorithm 1's correction against the observed costs
//! and hot-swaps every cached plan.

/// Drift detection tuning.
#[derive(Debug, Clone)]
pub struct FeedbackConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
    pub alpha: f64,
    /// Sustained `measured / predicted` ratio that triggers a swap. The
    /// executor and the noise-free predictor legitimately disagree by up
    /// to ~20% (the D310 agreement tolerance), so the threshold sits
    /// well above that band.
    pub threshold: f64,
    /// Minimum observations before the monitor may trigger — one noisy
    /// batch is not drift.
    pub min_samples: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            alpha: 0.3,
            threshold: 1.35,
            min_samples: 6,
        }
    }
}

/// Per-model EWMA drift monitor.
#[derive(Debug)]
pub struct DriftMonitor {
    cfg: FeedbackConfig,
    ewma: Option<f64>,
    samples: usize,
}

impl DriftMonitor {
    pub fn new(cfg: FeedbackConfig) -> Self {
        DriftMonitor {
            cfg,
            ewma: None,
            samples: 0,
        }
    }

    /// Record one executed batch's measured vs predicted virtual latency
    /// (same domain, microseconds). Returns `true` when drift is
    /// sustained and the caller should hot-swap.
    pub fn observe(&mut self, measured_us: f64, predicted_us: f64) -> bool {
        if predicted_us <= 0.0 || !measured_us.is_finite() {
            return false;
        }
        let ratio = measured_us / predicted_us;
        self.ewma = Some(match self.ewma {
            None => ratio,
            Some(prev) => self.cfg.alpha * ratio + (1.0 - self.cfg.alpha) * prev,
        });
        self.samples += 1;
        self.samples >= self.cfg.min_samples && self.ewma.unwrap() > self.cfg.threshold
    }

    /// Forget history — call after a hot-swap so the new plan gets a
    /// fresh observation window.
    pub fn reset(&mut self) {
        self.ewma = None;
        self.samples = 0;
    }

    /// Current smoothed ratio, if any observations were made.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        DriftMonitor::new(FeedbackConfig::default())
    }

    #[test]
    fn healthy_ratio_never_triggers() {
        let mut m = monitor();
        for _ in 0..100 {
            assert!(!m.observe(108.0, 100.0));
        }
        assert!((m.ewma().unwrap() - 1.08).abs() < 1e-9);
    }

    #[test]
    fn sustained_drift_triggers_after_min_samples() {
        let mut m = monitor();
        let mut fired_at = None;
        for i in 1..=20 {
            if m.observe(1000.0, 100.0) {
                fired_at = Some(i);
                break;
            }
        }
        assert_eq!(fired_at, Some(FeedbackConfig::default().min_samples));
    }

    #[test]
    fn spike_moves_ewma_but_reset_reopens_the_sample_floor() {
        let mut m = monitor();
        for _ in 0..10 {
            assert!(!m.observe(100.0, 100.0));
        }
        // One 10x outlier: EWMA moves to 0.3*10 + 0.7*1 = 3.7 — above
        // threshold. A *single* spike does trip a fast EWMA; what the
        // min_samples floor guarantees is that the first few batches
        // after startup or reset cannot.
        assert!(m.observe(1000.0, 100.0));
        m.reset();
        for _ in 0..FeedbackConfig::default().min_samples - 1 {
            assert!(!m.observe(1000.0, 100.0), "reset must reopen the floor");
        }
    }

    #[test]
    fn garbage_inputs_are_ignored() {
        let mut m = monitor();
        assert!(!m.observe(100.0, 0.0));
        assert!(!m.observe(f64::NAN, 100.0));
        assert!(m.ewma().is_none());
    }
}
