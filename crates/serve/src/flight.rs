//! Anomaly-triggered flight recorder: a bounded, always-on ring of the
//! most recently completed request span trees, dumped to disk exactly
//! once when an anomaly rule fires.
//!
//! The recorder is deliberately cheap enough to leave on in production:
//! recording a completed request is one `VecDeque` push under a short
//! mutex (the span tree was already built for the response), and the
//! ring is bounded by `ServeConfig::flight_capacity`. What makes it a
//! *flight recorder* rather than a log is the trigger discipline:
//!
//! * **Anomaly rules** ([`AnomalyRule`]) — SLO burn (a sliding window of
//!   sojourn breaches crossed its threshold), a shed event (admission
//!   queue full or SLA expiry), a drift-triggered plan hot-swap, or the
//!   D5xx model-check gate refusing a swap.
//! * **Dump-once latch** — the first rule to fire wins; every later
//!   firing only increments `duet_insight_dumps_suppressed_total`. A
//!   crashed-loop server therefore produces one forensic bundle, not a
//!   disk full of them.
//! * **Self-contained bundle** — the dump directory holds the last N
//!   traces, a full `/metrics` snapshot, the serving plan + fingerprint,
//!   the deployed system model and a freshly recorded execution witness,
//!   so `duet insight` and `duet-lint trace --dump` can replay it with
//!   no access to the original process.

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use duet_telemetry::registry as tm;
use duet_telemetry::{Span, SpanKind};
use parking_lot::Mutex;
use serde_json::{json, Value};

use crate::insight::Attribution;

/// Why a flight dump was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyRule {
    /// The SLO monitor's sliding breach window crossed its threshold.
    SloBurn,
    /// A request was shed (admission queue full or SLA expiry).
    Shed,
    /// Confirmed drift hot-swapped at least one cached plan.
    DriftSwap,
    /// The D5xx model-check gate refused a re-corrected plan.
    SwapRefused,
}

impl AnomalyRule {
    /// The `rule` label value on `duet_insight_dumps_total`, also the
    /// dump directory suffix.
    pub fn as_str(&self) -> &'static str {
        match self {
            AnomalyRule::SloBurn => "slo_burn",
            AnomalyRule::Shed => "shed",
            AnomalyRule::DriftSwap => "drift_swap",
            AnomalyRule::SwapRefused => "swap_refused",
        }
    }

    fn counter(&self) -> &'static duet_telemetry::Counter {
        match self {
            AnomalyRule::SloBurn => &tm::INSIGHT_DUMPS_SLO_BURN,
            AnomalyRule::Shed => &tm::INSIGHT_DUMPS_SHED,
            AnomalyRule::DriftSwap => &tm::INSIGHT_DUMPS_DRIFT_SWAP,
            AnomalyRule::SwapRefused => &tm::INSIGHT_DUMPS_SWAP_REFUSED,
        }
    }
}

impl std::fmt::Display for AnomalyRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Sojourn SLO: breach when one request exceeds `limit_us`; *burn* when
/// `burn_threshold` of the last `window` requests breached.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Per-request wall-clock sojourn limit, microseconds.
    pub limit_us: f64,
    /// Sliding window length, requests.
    pub window: usize,
    /// Breaches within the window that constitute a burn.
    pub burn_threshold: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            limit_us: 100_000.0,
            window: 64,
            burn_threshold: 8,
        }
    }
}

/// What one observed sojourn did to the SLO state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloVerdict {
    /// This request exceeded the limit.
    pub breached: bool,
    /// The sliding window is at or past the burn threshold.
    pub burning: bool,
}

/// Sliding-window breach counter over completed request sojourns.
#[derive(Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    recent: VecDeque<bool>,
    breaches_in_window: usize,
}

impl SloMonitor {
    pub fn new(cfg: SloConfig) -> Self {
        SloMonitor {
            cfg,
            recent: VecDeque::new(),
            breaches_in_window: 0,
        }
    }

    /// Observe one completed request's sojourn.
    pub fn observe(&mut self, sojourn_us: f64) -> SloVerdict {
        let breached = sojourn_us > self.cfg.limit_us;
        self.recent.push_back(breached);
        if breached {
            self.breaches_in_window += 1;
        }
        while self.recent.len() > self.cfg.window.max(1) {
            if self.recent.pop_front() == Some(true) {
                self.breaches_in_window -= 1;
            }
        }
        SloVerdict {
            breached,
            burning: self.breaches_in_window >= self.cfg.burn_threshold.max(1),
        }
    }
}

/// One completed request's forensic record: identity, attribution and
/// the full causal span tree (admission → batch → subgraph → kernel).
#[derive(Debug, Clone)]
pub struct RequestTrace {
    pub trace_id: u64,
    pub model: String,
    /// Size of the batch the request was coalesced into.
    pub batch: usize,
    /// Metrics epoch the request completed in.
    pub epoch: usize,
    /// Fingerprint of the serving plan that executed the batch.
    pub plan_fingerprint: u64,
    /// Wall-clock sojourn, microseconds.
    pub sojourn_us: f64,
    pub attribution: Attribution,
    /// The request's span tree. Serve-stage spans are wall-clock
    /// microseconds; executor spans are virtual microseconds.
    pub spans: Vec<Span>,
}

// Span lives in dependency-free `duet-telemetry`, so its JSON codec
// lives here with the dump format that needs it.

/// Encode one span for `traces.json`.
pub fn span_to_value(s: &Span) -> Value {
    json!({
        "seq": s.seq,
        "kind": s.kind as u64,
        "name": s.kind.name(),
        "detail": s.detail,
        "start_us": s.start_us,
        "dur_us": s.dur_us,
        "arg0": s.arg0,
        "arg1": s.arg1,
        "trace_id": s.trace_id,
        "span_id": s.span_id,
        "parent_id": s.parent_id,
    })
}

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("span field `{key}` missing or not a number"))
}

/// Decode one span of `traces.json`.
pub fn span_from_value(v: &Value) -> Result<Span, String> {
    let kind_raw = num(v, "kind")? as u64;
    let kind =
        SpanKind::from_u64(kind_raw).ok_or_else(|| format!("unknown span kind {kind_raw}"))?;
    Ok(Span {
        seq: num(v, "seq")? as u64,
        kind,
        detail: num(v, "detail")? as u64,
        start_us: num(v, "start_us")?,
        dur_us: num(v, "dur_us")?,
        arg0: num(v, "arg0")?,
        arg1: num(v, "arg1")?,
        trace_id: num(v, "trace_id")? as u64,
        span_id: num(v, "span_id")? as u64,
        parent_id: num(v, "parent_id")? as u64,
    })
}

impl RequestTrace {
    pub fn to_value(&self) -> Value {
        json!({
            "trace_id": self.trace_id,
            "model": self.model,
            "batch": self.batch,
            "epoch": self.epoch,
            "plan_fingerprint": self.plan_fingerprint,
            "sojourn_us": self.sojourn_us,
            "attribution": serde::Serialize::to_value(&self.attribution),
            "spans": Value::Array(self.spans.iter().map(span_to_value).collect()),
        })
    }

    pub fn from_value(v: &Value) -> Result<RequestTrace, String> {
        let spans = v
            .get("spans")
            .and_then(Value::as_array)
            .ok_or("trace has no `spans` array")?
            .iter()
            .map(span_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let attribution = v
            .get("attribution")
            .ok_or("trace has no `attribution`")
            .and_then(|a| {
                serde::Deserialize::from_value(a).map_err(|_| "bad `attribution` object")
            })?;
        Ok(RequestTrace {
            trace_id: num(v, "trace_id")? as u64,
            model: v
                .get("model")
                .and_then(Value::as_str)
                .ok_or("trace has no `model`")?
                .to_string(),
            batch: num(v, "batch")? as usize,
            epoch: num(v, "epoch")? as usize,
            plan_fingerprint: num(v, "plan_fingerprint")? as u64,
            sojourn_us: num(v, "sojourn_us")?,
            attribution,
            spans,
        })
    }
}

/// Everything a dump needs beyond the ring itself, built lazily by the
/// trigger site (the witness run is only paid when a dump is actually
/// written).
pub struct DumpPayload {
    pub model: String,
    /// `SchedulePlan::to_json` of the serving batch-1 plan.
    pub plan_json: String,
    pub plan_fingerprint: u64,
    /// Serialized deployed `SystemModel`.
    pub system_json: String,
    /// A freshly recorded `ExecutionWitness` (JSON), if the witnessed
    /// run succeeded.
    pub witness_json: Option<String>,
    /// The trace that tripped the rule, 0 if the rule has no single
    /// culprit (e.g. a refused swap).
    pub trigger_trace_id: u64,
}

/// The bounded ring + dump-once latch.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    dir: Option<PathBuf>,
    ring: Mutex<VecDeque<Arc<RequestTrace>>>,
    dumped: AtomicBool,
    last_dump: Mutex<Option<PathBuf>>,
}

impl FlightRecorder {
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            dir,
            ring: Mutex::new(VecDeque::new()),
            dumped: AtomicBool::new(false),
            last_dump: Mutex::new(None),
        }
    }

    /// Append one completed request, evicting the oldest past capacity.
    pub fn record(&self, trace: Arc<RequestTrace>) {
        tm::INSIGHT_TRACES.inc();
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Snapshot of the ring, oldest first.
    pub fn traces(&self) -> Vec<Arc<RequestTrace>> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Whether a trigger would actually write a dump (a directory is
    /// configured and the latch hasn't fired). Callers use this to skip
    /// building a [`DumpPayload`] on the fast path.
    pub fn armed(&self) -> bool {
        self.dir.is_some() && !self.dumped.load(Ordering::Relaxed)
    }

    /// Where the dump landed, if one was written.
    pub fn last_dump(&self) -> Option<PathBuf> {
        self.last_dump.lock().clone()
    }

    /// Fire an anomaly rule. The first firing writes the bundle and
    /// returns its directory; later firings count as suppressed. With no
    /// dump directory configured this is a cheap no-op (the payload
    /// closure is never called).
    pub fn trigger(
        &self,
        rule: AnomalyRule,
        payload: impl FnOnce() -> DumpPayload,
    ) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        if self.dumped.swap(true, Ordering::SeqCst) {
            tm::INSIGHT_DUMPS_SUPPRESSED.inc();
            return None;
        }
        let payload = payload();
        match self.write_dump(dir, rule, &payload) {
            Ok(path) => {
                rule.counter().inc();
                *self.last_dump.lock() = Some(path.clone());
                Some(path)
            }
            Err(e) => {
                eprintln!("duet-insight: flight dump failed: {e}");
                None
            }
        }
    }

    fn write_dump(
        &self,
        dir: &Path,
        rule: AnomalyRule,
        payload: &DumpPayload,
    ) -> Result<PathBuf, std::io::Error> {
        let dump = dir.join(format!("dump-{}", rule.as_str()));
        fs::create_dir_all(&dump)?;
        let traces = self.traces();
        let manifest = json!({
            "format": "duet-insight/1",
            "model": payload.model,
            "rule": rule.as_str(),
            "trigger_trace_id": payload.trigger_trace_id,
            "plan_fingerprint": payload.plan_fingerprint,
            "trace_count": traces.len() as u64,
        });
        fs::write(
            dump.join("manifest.json"),
            serde_json::to_string_pretty(&manifest).expect("manifest serializes"),
        )?;
        let trace_values = Value::Array(traces.iter().map(|t| t.to_value()).collect());
        fs::write(
            dump.join("traces.json"),
            serde_json::to_string_pretty(&trace_values).expect("traces serialize"),
        )?;
        fs::write(dump.join("metrics.prom"), duet_telemetry::prometheus_text())?;
        fs::write(dump.join("plan.json"), &payload.plan_json)?;
        fs::write(dump.join("system.json"), &payload.system_json)?;
        if let Some(w) = &payload.witness_json {
            fs::write(dump.join("witness.json"), w)?;
        }
        Ok(dump)
    }
}

/// A dump bundle read back from disk (`duet insight`, `duet-lint trace
/// --dump`).
pub struct FlightDump {
    pub manifest: Value,
    pub traces: Vec<RequestTrace>,
    pub plan_json: String,
    pub system_json: String,
    pub metrics_prom: String,
    pub witness: Option<duet_runtime::ExecutionWitness>,
}

impl FlightDump {
    /// Load a dump directory written by [`FlightRecorder::trigger`].
    pub fn load(dir: &Path) -> Result<FlightDump, String> {
        let read = |name: &str| {
            fs::read_to_string(dir.join(name))
                .map_err(|e| format!("{}: {e}", dir.join(name).display()))
        };
        let manifest: Value = serde_json::from_str(&read("manifest.json")?)
            .map_err(|e| format!("manifest.json: {e}"))?;
        let traces_raw: Value =
            serde_json::from_str(&read("traces.json")?).map_err(|e| format!("traces.json: {e}"))?;
        let traces = traces_raw
            .as_array()
            .ok_or("traces.json is not an array")?
            .iter()
            .map(RequestTrace::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let witness = match fs::read_to_string(dir.join("witness.json")) {
            Ok(s) => Some(
                serde_json::from_str::<duet_runtime::ExecutionWitness>(&s)
                    .map_err(|e| format!("witness.json: {e}"))?,
            ),
            Err(_) => None,
        };
        Ok(FlightDump {
            manifest,
            traces,
            plan_json: read("plan.json")?,
            system_json: read("system.json")?,
            metrics_prom: read("metrics.prom")?,
            witness,
        })
    }

    /// Model name recorded in the manifest.
    pub fn model(&self) -> Option<&str> {
        self.manifest.get("model").and_then(Value::as_str)
    }

    /// Rule that triggered the dump.
    pub fn rule(&self) -> Option<&str> {
        self.manifest.get("rule").and_then(Value::as_str)
    }

    /// Trace id that tripped the rule (0 = no single culprit).
    pub fn trigger_trace_id(&self) -> u64 {
        self.manifest
            .get("trigger_trace_id")
            .and_then(Value::as_u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            trace_id: id,
            model: "mlp".into(),
            batch: 1,
            epoch: 0,
            plan_fingerprint: 0xfeed,
            sojourn_us: 123.0,
            attribution: Attribution::default(),
            spans: vec![Span {
                seq: 0,
                kind: SpanKind::ServeRequest,
                detail: 1,
                start_us: 10.0,
                dur_us: 123.0,
                arg0: 0.0,
                arg1: 0.0,
                trace_id: id,
                span_id: id * 10,
                parent_id: 0,
            }],
        })
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let fr = FlightRecorder::new(3, None);
        for id in 1..=5 {
            fr.record(trace(id));
        }
        let ids: Vec<u64> = fr.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn request_trace_round_trips_through_json() {
        let t = trace(7);
        let back = RequestTrace::from_value(&t.to_value()).unwrap();
        assert_eq!(back.trace_id, 7);
        assert_eq!(back.model, "mlp");
        assert_eq!(back.plan_fingerprint, 0xfeed);
        assert_eq!(back.spans.len(), 1);
        assert_eq!(back.spans[0].kind, SpanKind::ServeRequest);
        assert_eq!(back.spans[0].span_id, 70);
    }

    #[test]
    fn trigger_without_dir_is_inert() {
        let fr = FlightRecorder::new(4, None);
        let fired = std::cell::Cell::new(false);
        assert!(!fr.armed());
        let out = fr.trigger(AnomalyRule::Shed, || {
            fired.set(true);
            unreachable!("payload must not be built without a dump dir")
        });
        assert!(out.is_none());
        assert!(!fired.get());
    }

    #[test]
    fn second_trigger_is_suppressed() {
        let dir = std::env::temp_dir().join(format!(
            "duet-flight-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(4, Some(dir.clone()));
        fr.record(trace(1));
        let payload = || DumpPayload {
            model: "mlp".into(),
            plan_json: "{}".into(),
            plan_fingerprint: 0xfeed,
            system_json: "{}".into(),
            witness_json: None,
            trigger_trace_id: 1,
        };
        let first = fr.trigger(AnomalyRule::SloBurn, payload);
        let path = first.expect("first trigger dumps");
        assert!(path.join("manifest.json").is_file());
        assert!(path.join("traces.json").is_file());
        assert!(path.join("metrics.prom").is_file());
        let second = fr.trigger(AnomalyRule::Shed, payload);
        assert!(second.is_none(), "latch suppresses the second dump");
        assert!(!fr.armed());
        // The bundle loads back and carries the ring contents.
        let dump = FlightDump::load(&path).unwrap();
        assert_eq!(dump.model(), Some("mlp"));
        assert_eq!(dump.rule(), Some("slo_burn"));
        assert_eq!(dump.trigger_trace_id(), 1);
        assert_eq!(dump.traces.len(), 1);
        assert_eq!(dump.traces[0].trace_id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slo_monitor_burns_at_threshold() {
        let mut m = SloMonitor::new(SloConfig {
            limit_us: 100.0,
            window: 4,
            burn_threshold: 2,
        });
        assert_eq!(
            m.observe(50.0),
            SloVerdict {
                breached: false,
                burning: false
            }
        );
        assert_eq!(
            m.observe(150.0),
            SloVerdict {
                breached: true,
                burning: false
            }
        );
        let v = m.observe(200.0);
        assert!(v.breached && v.burning, "second breach in window burns");
        // Breaches age out of the window: after `window` healthy
        // observations the monitor stops burning.
        let verdicts: Vec<SloVerdict> = (0..4).map(|_| m.observe(10.0)).collect();
        assert!(verdicts.iter().all(|v| !v.breached));
        assert!(!verdicts.last().unwrap().burning);
    }
}
