//! Tail-latency attribution: decompose one request's wall-clock sojourn
//! into named segments that sum *exactly* to the measured latency.
//!
//! Segments, in causal order:
//!
//! * **queue** — submit until the batcher pulled the request off the
//!   bounded queue (admission backlog).
//! * **linger** — pulled until the chunk started executing (time spent
//!   coalescing the batch, bounded by `ServeConfig::linger`).
//! * **compute_cpu / compute_gpu / transfer** — the executor's wall time
//!   split by the ratios of its virtual-time [`ExecBreakdown`] (the
//!   virtual parts can overlap each other, so only their *ratios* are
//!   meaningful in the wall domain).
//! * **overhead** — everything the other segments don't account for:
//!   feed merging, output splitting, batching bookkeeping and the wall
//!   time the executor spent outside modeled compute/transfer.
//!
//! The invariant that all six segments sum to the measured sojourn
//! holds by construction (overhead is the remainder), which is what
//! makes per-segment P99 histograms an *attribution* rather than a
//! sampling estimate.

use duet_runtime::ExecBreakdown;
use serde::{Deserialize, Serialize};

/// One request's sojourn, decomposed. All values are wall-clock
/// microseconds and sum to the request's measured sojourn.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Attribution {
    pub queue_us: f64,
    pub linger_us: f64,
    pub compute_cpu_us: f64,
    pub compute_gpu_us: f64,
    pub transfer_us: f64,
    pub overhead_us: f64,
}

impl Attribution {
    /// Segment names, in causal order — the label values of the
    /// `duet_serve_segment_us` histogram family.
    pub const SEGMENTS: [&'static str; 6] = [
        "queue",
        "linger",
        "compute_cpu",
        "compute_gpu",
        "transfer",
        "overhead",
    ];

    /// Decompose one request. `exec_wall_us` is the whole execution
    /// phase (merge + run + split); `run_wall_us` is the executor call
    /// alone, split across compute/transfer by the breakdown's virtual
    /// ratios. The remainder of the execution phase is overhead.
    pub fn attribute(
        queue_us: f64,
        linger_us: f64,
        exec_wall_us: f64,
        run_wall_us: f64,
        breakdown: &ExecBreakdown,
    ) -> Attribution {
        let exec_wall = exec_wall_us.max(0.0);
        let run = run_wall_us.clamp(0.0, exec_wall);
        let total = breakdown.total_us();
        let (cpu, gpu, xfer) = if total > 0.0 {
            (
                run * breakdown.cpu_busy_us / total,
                run * breakdown.gpu_busy_us / total,
                run * breakdown.transfer_us / total,
            )
        } else {
            (0.0, 0.0, 0.0)
        };
        Attribution {
            queue_us: queue_us.max(0.0),
            linger_us: linger_us.max(0.0),
            compute_cpu_us: cpu,
            compute_gpu_us: gpu,
            transfer_us: xfer,
            overhead_us: (exec_wall - cpu - gpu - xfer).max(0.0),
        }
    }

    /// `(name, value)` pairs in [`Attribution::SEGMENTS`] order.
    pub fn segments(&self) -> [(&'static str, f64); 6] {
        [
            ("queue", self.queue_us),
            ("linger", self.linger_us),
            ("compute_cpu", self.compute_cpu_us),
            ("compute_gpu", self.compute_gpu_us),
            ("transfer", self.transfer_us),
            ("overhead", self.overhead_us),
        ]
    }

    /// Sum of all segments — equals the request's sojourn by
    /// construction.
    pub fn total_us(&self) -> f64 {
        self.segments().iter().map(|(_, v)| v).sum()
    }
}

/// Aggregate statistics for one segment across many requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentSummary {
    pub segment: String,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p99_us: f64,
}

/// Per-segment mean/P50/P99 over a set of attributed requests — what
/// the load generator prints at exit and embeds in its JSON report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributionSummary {
    pub requests: usize,
    pub segments: Vec<SegmentSummary>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl AttributionSummary {
    /// Summarize a set of per-request attributions. Empty input yields
    /// an all-zero summary with `requests == 0`.
    pub fn from_samples(samples: &[Attribution]) -> AttributionSummary {
        let segments = Attribution::SEGMENTS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut vals: Vec<f64> = samples.iter().map(|a| a.segments()[i].1).collect();
                vals.sort_by(|a, b| a.total_cmp(b));
                let mean = if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                };
                SegmentSummary {
                    segment: name.to_string(),
                    mean_us: mean,
                    p50_us: percentile(&vals, 0.50),
                    p99_us: percentile(&vals, 0.99),
                }
            })
            .collect();
        AttributionSummary {
            requests: samples.len(),
            segments,
        }
    }

    /// Fixed-width table, one row per segment.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:<12} {:>12} {:>12} {:>12}\n",
            "segment", "mean_us", "p50_us", "p99_us"
        ));
        for s in &self.segments {
            out.push_str(&format!(
                "  {:<12} {:>12.1} {:>12.1} {:>12.1}\n",
                s.segment, s.mean_us, s.p50_us, s.p99_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_sum_to_sojourn() {
        let b = ExecBreakdown {
            cpu_busy_us: 30.0,
            gpu_busy_us: 60.0,
            transfer_us: 10.0,
        };
        let a = Attribution::attribute(100.0, 50.0, 400.0, 300.0, &b);
        // queue + linger + exec_wall == sojourn (550).
        assert!((a.total_us() - 550.0).abs() < 1e-9);
        // run_wall split 3:6:1 over 300, overhead covers the other 100.
        assert!((a.compute_cpu_us - 90.0).abs() < 1e-9);
        assert!((a.compute_gpu_us - 180.0).abs() < 1e-9);
        assert!((a.transfer_us - 30.0).abs() < 1e-9);
        assert!((a.overhead_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_breakdown_attributes_exec_to_overhead() {
        let a = Attribution::attribute(0.0, 0.0, 250.0, 200.0, &ExecBreakdown::default());
        assert_eq!(a.compute_cpu_us + a.compute_gpu_us + a.transfer_us, 0.0);
        assert!((a.overhead_us - 250.0).abs() < 1e-9);
    }

    #[test]
    fn summary_orders_segments_and_computes_percentiles() {
        let samples: Vec<Attribution> = (0..100)
            .map(|i| Attribution {
                queue_us: i as f64,
                ..Attribution::default()
            })
            .collect();
        let s = AttributionSummary::from_samples(&samples);
        assert_eq!(s.requests, 100);
        assert_eq!(s.segments.len(), 6);
        assert_eq!(s.segments[0].segment, "queue");
        assert!((s.segments[0].mean_us - 49.5).abs() < 1e-9);
        assert!((s.segments[0].p50_us - 50.0).abs() < 1.0);
        assert!((s.segments[0].p99_us - 98.0).abs() < 1.0);
        // Untouched segments are all-zero.
        assert_eq!(s.segments[5].p99_us, 0.0);
    }

    #[test]
    fn attribution_round_trips_through_json() {
        let a = Attribution {
            queue_us: 1.5,
            linger_us: 2.5,
            compute_cpu_us: 3.0,
            compute_gpu_us: 4.0,
            transfer_us: 5.0,
            overhead_us: 6.0,
        };
        let s = serde_json::to_string_pretty(&a).unwrap();
        let back: Attribution = serde_json::from_str(&s).unwrap();
        assert_eq!(a, back);
    }
}
