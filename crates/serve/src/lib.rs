//! # duet-serve
//!
//! An online-serving runtime on top of the DUET engine: the piece that
//! turns the paper's offline-scheduled, single-request engine into a
//! long-lived server with production concerns.
//!
//! Request flow: **registry → admission → batcher → executor →
//! feedback**.
//!
//! * **Engine registry + plan cache** ([`ServeServer`], [`PlanCache`]) —
//!   one compiled engine per (model, batch size), built lazily and
//!   reused; every variant's [`duet_core::SchedulePlan`] records its
//!   batch (Fig. 17: occupancy — and therefore the optimal placement —
//!   changes with batch size).
//! * **SLA admission** — bounded per-model queues shed at submit time
//!   ([`ServeError::QueueFull`]); per-request deadlines shed while
//!   queued ([`ServeError::Expired`]).
//! * **Dynamic batcher** — coalesces requests up to a max batch within
//!   a linger window, executes power-of-two sized chunks on the
//!   batch-appropriate engine variant; batched outputs are bit-identical
//!   to individual batch-1 runs (every kernel is row-independent).
//! * **Runtime feedback** ([`DriftMonitor`]) — EWMA of measured vs
//!   predicted virtual latency per batch; sustained drift re-runs
//!   Algorithm 1's correction against the observed system and hot-swaps
//!   every cached plan through an [`ArcCell`] (arc-swap-style atomic
//!   publication).
//! * **Metrics** ([`Metrics`]) — shed/completion counters, queue depth,
//!   batch-size histogram, wall-clock sojourn and virtual service
//!   percentiles, partitioned into drift epochs.
//! * **duet-insight** ([`FlightRecorder`], [`Attribution`],
//!   [`SloMonitor`]) — a per-request trace context minted at admission
//!   links every span from admission through batch, subgraph and kernel
//!   into one causal tree; each response carries a per-segment
//!   (queue/linger/compute/transfer/overhead) decomposition of its
//!   measured sojourn; an always-on bounded ring of completed span
//!   trees is dumped to disk on anomalies (SLO burn, shed, drift
//!   hot-swap, checker-refused swap) for offline analysis with
//!   `duet insight` and `duet-lint trace --dump`.
//!
//! The `duet-serve` binary is a closed/open-loop Poisson load generator
//! over this runtime; `cargo run --release -p duet-serve --bin
//! duet-serve -- --help` lists its scenario knobs.

pub mod batch;
pub mod cache;
pub mod feedback;
pub mod flight;
pub mod insight;
pub mod loadgen;
pub mod metrics;
pub mod server;
pub mod spec;

pub use batch::{merge_feeds, split_outputs};
pub use cache::{ArcCell, EngineVariant, PlanCache};
pub use feedback::{DriftMonitor, FeedbackConfig};
pub use flight::{
    AnomalyRule, FlightDump, FlightRecorder, RequestTrace, SloConfig, SloMonitor, SloVerdict,
};
pub use insight::{Attribution, AttributionSummary, SegmentSummary};
pub use loadgen::{LoadGen, LoadGenConfig, LoadReport};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{ServeConfig, ServeHandle, ServeResponse, ServeServer};
pub use spec::{batch_axis, ModelSpec};

/// Everything that can go wrong between submit and response.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No model of that name is registered.
    UnknownModel(String),
    /// Admission control: the model's bounded queue is full.
    QueueFull,
    /// The request's SLA deadline elapsed before execution started.
    Expired,
    /// The server is shutting down.
    ShuttingDown,
    /// A request feed is missing an input tensor.
    MissingInput { label: String },
    /// A request feed has the wrong shape for its input.
    BadShape { label: String, msg: String },
    /// Execution failed.
    Exec(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(m) => write!(f, "unknown model {m:?}"),
            ServeError::QueueFull => write!(f, "queue full (request shed)"),
            ServeError::Expired => write!(f, "SLA deadline expired before execution"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::MissingInput { label } => write!(f, "missing input tensor {label:?}"),
            ServeError::BadShape { label, msg } => write!(f, "bad shape for {label:?}: {msg}"),
            ServeError::Exec(msg) => write!(f, "execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
