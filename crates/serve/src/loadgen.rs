//! Load generation against a [`ServeServer`]: open-loop Poisson traffic
//! (arrivals independent of completions — the serving literature's
//! standard for measuring sojourn under load) or closed-loop worker
//! traffic (each worker waits for its response before the next submit).
//!
//! Besides driving load, the generator performs the runtime's end-to-end
//! verifications: it samples completed requests and checks their batched
//! outputs are bit-identical to direct batch-1 reference runs, and it
//! reads the per-epoch metrics windows to judge whether a drift
//! injection led to exactly one plan hot-swap that lowered measured
//! latency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use duet_device::SystemModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::insight::{Attribution, AttributionSummary};
use crate::metrics::MetricsSnapshot;
use crate::server::{ServeResponse, ServeServer};
use crate::ServeError;

/// A plausible degraded deployment: the GPU loses an order of magnitude
/// of compute (thermal throttling), most of its memory bandwidth
/// (co-tenant contention) and pays much more per kernel launch (driver
/// regression). Placements corrected against the healthy model become
/// badly stale under this.
pub fn degraded_gpu(base: &SystemModel) -> SystemModel {
    let mut sys = base.clone();
    sys.gpu.peak_gflops /= 12.0;
    sys.gpu.mem_bw_gbps /= 8.0;
    sys.gpu.kernel_launch_us *= 8.0;
    sys
}

/// Scenario description.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Mean offered rate, queries/second (open loop only).
    pub qps: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Seed for arrivals and request contents.
    pub seed: u64,
    /// Per-request SLA budget passed to the server.
    pub sla: Option<Duration>,
    /// `Some(n)` switches to closed-loop mode with `n` workers.
    pub closed_workers: Option<usize>,
    /// Inject this system model at half duration (drift scenario).
    pub drift: Option<SystemModel>,
    /// How many completed requests to verify bit-identical against
    /// reference runs.
    pub verify_samples: usize,
    /// How long to wait for in-flight responses after generation ends
    /// before declaring the server wedged.
    pub drain_timeout: Duration,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            qps: 100.0,
            duration: Duration::from_millis(2000),
            seed: 0x10ad,
            sla: None,
            closed_workers: None,
            drift: None,
            verify_samples: 8,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// What a load run observed.
#[derive(Debug)]
pub struct LoadReport {
    /// Wall time of the whole run including drain.
    pub wall: Duration,
    /// Server-side metrics at the end of the run.
    pub snapshot: MetricsSnapshot,
    /// Submit attempts.
    pub offered: u64,
    /// Submits accepted by admission control.
    pub accepted: u64,
    /// Submits shed at admission ([`ServeError::QueueFull`]).
    pub shed_at_submit: u64,
    /// Responses that arrived as errors (expiry included).
    pub error_responses: u64,
    /// Responses that arrived successfully.
    pub ok_responses: u64,
    /// Requests whose responses never arrived within the drain timeout —
    /// nonzero means the server wedged (the binary treats it as a
    /// deadlock and fails).
    pub undrained: u64,
    /// Bit-identity verification: (checked, failures, largest batch
    /// size among checked responses).
    pub verified: (usize, usize, usize),
    /// Whether a drift system was injected.
    pub drift_injected: bool,
    /// P50 of per-request virtual service before injection (epoch 0,
    /// healthy system), in the drifted epoch (stale plans) and in the
    /// post-swap epoch, microseconds. Comparing the drifted epoch to the
    /// baseline tells whether the injection perturbed this model at all
    /// (a model placed entirely on the undegraded device won't move).
    pub baseline_epoch_p50_us: Option<f64>,
    pub drift_epoch_p50_us: Option<f64>,
    pub post_swap_epoch_p50_us: Option<f64>,
    /// Completed requests per second of generation time.
    pub throughput_qps: f64,
    /// Per-segment tail-latency attribution (mean/P50/P99) over every
    /// successful response — where the sojourn actually went.
    pub attribution: AttributionSummary,
    /// Responses whose attribution segments failed to sum to the
    /// measured sojourn within 5% — nonzero means the decomposition
    /// lost track of real time.
    pub attribution_mismatches: u64,
}

/// The generator itself.
#[derive(Debug, Default)]
pub struct LoadGen {
    pub cfg: LoadGenConfig,
}

impl LoadGen {
    pub fn new(cfg: LoadGenConfig) -> Self {
        LoadGen { cfg }
    }

    /// Run the scenario against `model` on `server`.
    pub fn run(&self, server: &ServeServer, model: &str) -> Result<LoadReport, ServeError> {
        let cache = server
            .cache(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let started = Instant::now();

        let offered = AtomicU64::new(0);
        let accepted = AtomicU64::new(0);
        let shed_at_submit = AtomicU64::new(0);
        let ok_responses = AtomicU64::new(0);
        let error_responses = AtomicU64::new(0);
        let undrained = AtomicU64::new(0);
        // (request seed, response) pairs kept for bit-identity checks.
        let samples: Mutex<Vec<(u64, ServeResponse)>> = Mutex::new(Vec::new());
        // Every successful response's sojourn decomposition.
        let attributions: Mutex<Vec<Attribution>> = Mutex::new(Vec::new());
        let attribution_mismatches = AtomicU64::new(0);
        let drift_injected = AtomicBool::new(false);

        let half = self.cfg.duration / 2;
        let inject_if_due = |elapsed: Duration| {
            if let Some(sys) = &self.cfg.drift {
                if elapsed >= half && !drift_injected.swap(true, Ordering::Relaxed) {
                    server.inject_system(model, sys.clone());
                }
            }
        };
        let handle_response =
            |seed: u64, result: Option<Result<ServeResponse, ServeError>>| match result {
                Some(Ok(resp)) => {
                    ok_responses.fetch_add(1, Ordering::Relaxed);
                    // The segments must re-add to the measured sojourn —
                    // an attribution that loses time is worthless.
                    let sojourn_us = resp.sojourn.as_secs_f64() * 1e6;
                    if (resp.attribution.total_us() - sojourn_us).abs() > sojourn_us.max(1.0) * 0.05
                    {
                        attribution_mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    attributions.lock().unwrap().push(resp.attribution);
                    let mut s = samples.lock().unwrap();
                    if s.len() < self.cfg.verify_samples {
                        s.push((seed, resp));
                    }
                }
                Some(Err(_)) => {
                    error_responses.fetch_add(1, Ordering::Relaxed);
                }
                None => {
                    undrained.fetch_add(1, Ordering::Relaxed);
                }
            };

        match self.cfg.closed_workers {
            None => {
                // Open loop: Poisson arrivals on this thread, responses
                // drained by a collector thread.
                let (tx, rx) = crossbeam::channel::unbounded::<(u64, crate::server::ServeHandle)>();
                let drain_timeout = self.cfg.drain_timeout;
                std::thread::scope(|scope| {
                    let handle_response = &handle_response;
                    let collector = scope.spawn(move || {
                        for (seed, handle) in rx {
                            handle_response(seed, handle.wait_timeout(drain_timeout));
                        }
                    });
                    let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
                    let mean_gap = Duration::from_secs_f64(1.0 / self.cfg.qps.max(1e-9));
                    let mut next_arrival = started;
                    let mut i: u64 = 0;
                    while started.elapsed() < self.cfg.duration {
                        inject_if_due(started.elapsed());
                        let now = Instant::now();
                        if next_arrival > now {
                            std::thread::sleep(next_arrival - now);
                        }
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        next_arrival += mean_gap.mul_f64(-u.ln());
                        let seed = self.cfg.seed.wrapping_add(i);
                        i += 1;
                        offered.fetch_add(1, Ordering::Relaxed);
                        let feeds = cache.spec().request_feeds(seed);
                        match server.submit(model, feeds, self.cfg.sla) {
                            Ok(handle) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                                tx.send((seed, handle)).expect("collector alive");
                            }
                            Err(ServeError::QueueFull) => {
                                shed_at_submit.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                error_responses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    drop(tx);
                    collector.join().expect("collector thread");
                });
            }
            Some(workers) => {
                // Closed loop: each worker keeps exactly one request in
                // flight; drift injection runs on this thread's clock.
                std::thread::scope(|scope| {
                    for w in 0..workers.max(1) {
                        let offered = &offered;
                        let accepted = &accepted;
                        let shed_at_submit = &shed_at_submit;
                        let handle_response = &handle_response;
                        let cache = &cache;
                        scope.spawn(move || {
                            let mut i: u64 = 0;
                            while started.elapsed() < self.cfg.duration {
                                let seed =
                                    self.cfg.seed.wrapping_add((w as u64) << 32).wrapping_add(i);
                                i += 1;
                                offered.fetch_add(1, Ordering::Relaxed);
                                let feeds = cache.spec().request_feeds(seed);
                                match server.submit(model, feeds, self.cfg.sla) {
                                    Ok(handle) => {
                                        accepted.fetch_add(1, Ordering::Relaxed);
                                        handle_response(
                                            seed,
                                            handle.wait_timeout(self.cfg.drain_timeout),
                                        );
                                    }
                                    Err(ServeError::QueueFull) => {
                                        shed_at_submit.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Err(_) => {}
                                }
                            }
                        });
                    }
                    while started.elapsed() < self.cfg.duration {
                        inject_if_due(started.elapsed());
                        std::thread::sleep(Duration::from_millis(5));
                    }
                });
            }
        }

        // Bit-identity verification against direct reference runs. The
        // system model never affects numeric outputs, so this holds
        // across drift epochs too.
        let samples = samples.into_inner().unwrap();
        let mut failures = 0;
        let mut max_checked_batch = 0;
        for (seed, resp) in &samples {
            max_checked_batch = max_checked_batch.max(resp.batch_size);
            let feeds = cache.spec().request_feeds(*seed);
            let want = server.reference_run(model, &feeds)?;
            if resp.outputs != want {
                failures += 1;
            }
        }

        let metrics = server
            .metrics(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let snapshot = metrics.snapshot();
        let drift = drift_injected.load(Ordering::Relaxed);
        let (baseline_p50, drift_p50, post_p50) = if drift {
            (
                metrics.epoch_service_stats(0).map(|s| s.p50()),
                metrics.epoch_service_stats(1).map(|s| s.p50()),
                metrics.epoch_service_stats(2).map(|s| s.p50()),
            )
        } else {
            (None, None, None)
        };
        let completed = snapshot.completed;
        let attribution = AttributionSummary::from_samples(&attributions.into_inner().unwrap());
        Ok(LoadReport {
            wall: started.elapsed(),
            snapshot,
            offered: offered.load(Ordering::Relaxed),
            accepted: accepted.load(Ordering::Relaxed),
            shed_at_submit: shed_at_submit.load(Ordering::Relaxed),
            error_responses: error_responses.load(Ordering::Relaxed),
            ok_responses: ok_responses.load(Ordering::Relaxed),
            undrained: undrained.load(Ordering::Relaxed),
            verified: (samples.len(), failures, max_checked_batch),
            drift_injected: drift,
            baseline_epoch_p50_us: baseline_p50,
            drift_epoch_p50_us: drift_p50,
            post_swap_epoch_p50_us: post_p50,
            throughput_qps: completed as f64 / self.cfg.duration.as_secs_f64().max(1e-9),
            attribution,
            attribution_mismatches: attribution_mismatches.load(Ordering::Relaxed),
        })
    }
}
