//! Serving metrics: counters, gauges and latency windows.
//!
//! Two latency domains coexist and must not be mixed:
//!
//! * **wall-clock** — what the host actually took (sojourn = queueing +
//!   batching linger + numeric execution). This is what a production SLA
//!   would bound, so sojourn percentiles are reported from wall time.
//! * **virtual** — latency on the *modeled* hardware (Xeon + Titan V),
//!   from the executor's virtual clock. The feedback loop compares
//!   virtual-measured against virtual-predicted, and the drift study
//!   compares per-epoch virtual service, because only the virtual domain
//!   is affected by an injected system-model change.
//!
//! Service samples are normalized per request (`batch latency / batch
//! size`) so epochs with different batch-size mixes stay comparable.
//!
//! **Bounded memory.** Every window here is fixed-size: batch sizes go
//! into a log2-bucket [`Histogram`] (power-of-two batch sizes occupy
//! distinct buckets, so the histogram is exact), and latency percentiles
//! come from bounded [`Reservoir`]s (uniform samples, deterministic
//! stream). A serving process under sustained load holds a constant
//! metrics footprint — the previous unbounded `Vec`-per-sample design
//! grew without limit.
//!
//! Every update is also mirrored into the process-global
//! [`duet_telemetry::registry`] families (`duet_serve_*`), which is what
//! `--metrics-addr` / `--metrics-out` expose; the per-model instance
//! remains the source for [`MetricsSnapshot`] reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use duet_runtime::LatencyStats;
use duet_telemetry::registry as tm;
use duet_telemetry::{Histogram, Reservoir};
use parking_lot::Mutex;

/// Bounded sample count for the wall-sojourn and virtual-service windows.
const RESERVOIR_CAP: usize = 4096;
/// Bounded sample count per epoch window.
const EPOCH_RESERVOIR_CAP: usize = 1024;
/// Epoch windows tracked per model. Epochs advance only on drift
/// injection and plan hot-swap, so this is generous; samples from epochs
/// beyond the cap still feed the aggregate windows but get no dedicated
/// per-epoch summary.
const MAX_EPOCHS: usize = 32;

/// Epoch indices: 0 until the system model changes, bumped on every
/// injected change and on every plan hot-swap. The drift experiment
/// reads epoch 1 as "drifted, stale plan" and epoch 2 as "post-swap".
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_expired: AtomicU64,
    exec_errors: AtomicU64,
    batches_executed: AtomicU64,
    plan_swaps: AtomicU64,
    plan_swaps_rejected: AtomicU64,
    queue_depth: AtomicUsize,
    epoch: AtomicUsize,
    batch_size: Histogram,
    sojourn_us: Reservoir,
    virtual_service_us: Reservoir,
    epoch_service_us: Mutex<Vec<Reservoir>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            exec_errors: AtomicU64::new(0),
            batches_executed: AtomicU64::new(0),
            plan_swaps: AtomicU64::new(0),
            plan_swaps_rejected: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
            batch_size: Histogram::new("serve_batch_size", "per-model batch sizes"),
            sojourn_us: Reservoir::new(RESERVOIR_CAP),
            virtual_service_us: Reservoir::new(RESERVOIR_CAP),
            epoch_service_us: Mutex::new(Vec::new()),
        }
    }

    /// Current epoch index.
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Enter the next epoch (system change or plan swap).
    pub fn bump_epoch(&self) -> usize {
        let e = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        tm::SERVE_EPOCH.set_max(e as i64);
        e
    }

    /// One request submitted (before admission).
    pub fn inc_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_SUBMITTED.inc();
    }

    /// One request admitted into the bounded queue. Must be balanced by
    /// [`Metrics::queue_dec`] when the worker pulls it off — the pairing
    /// is what makes `queue_depth` return to zero on a drained server.
    pub fn queue_inc(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_ADMITTED.inc();
        tm::SERVE_QUEUE_DEPTH.inc();
    }

    /// `n` requests pulled off the queue by the worker.
    pub fn queue_dec(&self, n: usize) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
        tm::SERVE_QUEUE_DEPTH.add(-(n as i64));
    }

    /// Requests currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// One request shed at admission (queue full). The submit-side inc
    /// is rolled back by the caller via [`Metrics::queue_dec`].
    pub fn shed_queue_full(&self) {
        self.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_SHED_QUEUE_FULL.inc();
    }

    /// One request shed after queueing (SLA expired before execution).
    pub fn shed_expired(&self) {
        self.shed_expired.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_SHED_EXPIRED.inc();
    }

    /// One batch failed in execution.
    pub fn exec_error(&self) {
        self.exec_errors.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_EXEC_ERRORS.inc();
    }

    /// One drift-driven plan hot-swap.
    pub fn plan_swap(&self) {
        self.plan_swaps.fetch_add(1, Ordering::Relaxed);
        tm::SERVE_PLAN_SWAPS.inc();
    }

    /// `n` re-corrected plans refused by the D5xx model-check gate.
    pub fn plan_swap_rejected(&self, n: u64) {
        self.plan_swaps_rejected.fetch_add(n, Ordering::Relaxed);
        tm::SERVE_PLAN_SWAP_REJECTED.add(n);
    }

    /// Record one executed batch: its size, and each member request's
    /// wall sojourn plus per-request virtual service share.
    pub fn record_batch(&self, batch: usize, sojourns_us: &[f64], virtual_batch_us: f64) {
        self.batches_executed.fetch_add(1, Ordering::Relaxed);
        self.completed
            .fetch_add(sojourns_us.len() as u64, Ordering::Relaxed);
        self.batch_size.observe(batch as u64);
        tm::SERVE_BATCHES.inc();
        tm::SERVE_COMPLETED.add(sojourns_us.len() as u64);
        tm::SERVE_BATCH_SIZE.observe(batch as u64);
        duet_telemetry::record_instant(
            duet_telemetry::SpanKind::ServeBatch,
            batch as u64,
            virtual_batch_us,
            0.0,
        );
        for &s in sojourns_us {
            self.sojourn_us.record(s);
            tm::SERVE_SOJOURN_US.observe_us(s);
        }
        let epoch = self.epoch();
        let per_request = virtual_batch_us / batch as f64;
        {
            let mut windows = self.epoch_service_us.lock();
            while windows.len() <= epoch && windows.len() < MAX_EPOCHS {
                windows.push(Reservoir::new(EPOCH_RESERVOIR_CAP));
            }
            if let Some(window) = windows.get(epoch) {
                for _ in 0..sojourns_us.len() {
                    window.record(per_request);
                }
            }
        }
        for _ in 0..sojourns_us.len() {
            self.virtual_service_us.record(per_request);
            tm::SERVE_VIRTUAL_SERVICE_US.observe_us(per_request);
        }
    }

    /// Latency summary of per-request virtual service in one epoch.
    pub fn epoch_service_stats(&self, epoch: usize) -> Option<LatencyStats> {
        let windows = self.epoch_service_us.lock();
        let samples = windows.get(epoch).map(Reservoir::snapshot)?;
        (!samples.is_empty()).then(|| LatencyStats::from_samples(samples))
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sojourn_samples = self.sojourn_us.snapshot();
        let service_samples = self.virtual_service_us.snapshot();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            plan_swaps: self.plan_swaps.load(Ordering::Relaxed),
            plan_swaps_rejected: self.plan_swaps_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            epoch: self.epoch(),
            batch_histogram: self
                .batch_size
                .pow2_values()
                .into_iter()
                .map(|(v, n)| (v as usize, n))
                .collect(),
            sojourn: (!sojourn_samples.is_empty())
                .then(|| LatencyStats::from_samples(sojourn_samples)),
            virtual_service: (!service_samples.is_empty())
                .then(|| LatencyStats::from_samples(service_samples)),
        }
    }
}

/// Owned summary of a [`Metrics`] instance.
#[derive(Debug)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired: u64,
    pub exec_errors: u64,
    pub batches_executed: u64,
    pub plan_swaps: u64,
    /// Re-corrected plans refused by the D5xx model-check gate.
    pub plan_swaps_rejected: u64,
    pub queue_depth: usize,
    pub epoch: usize,
    /// (batch size, number of batches executed at that size). Exact:
    /// batch sizes are powers of two, which land in distinct log2
    /// buckets.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Wall-clock sojourn (queueing + linger + execution), microseconds.
    /// Percentiles come from a bounded uniform reservoir.
    pub sojourn: Option<LatencyStats>,
    /// Per-request virtual service (modeled hardware), microseconds.
    pub virtual_service: Option<LatencyStats>,
}

impl MetricsSnapshot {
    /// Total requests shed (admission + expiry).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_expired
    }

    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        let (sum, n) = self
            .batch_histogram
            .iter()
            .fold((0u64, 0u64), |(s, n), &(b, c)| (s + b as u64 * c, n + c));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_has_no_stats() {
        let m = Metrics::new();
        let s = m.snapshot();
        assert!(s.sojourn.is_none());
        assert!(s.virtual_service.is_none());
        assert_eq!(s.shed(), 0);
        assert_eq!(s.mean_batch(), 0.0);
    }

    #[test]
    fn batches_are_histogrammed_and_normalized_per_request() {
        let m = Metrics::new();
        m.record_batch(4, &[10.0, 11.0, 12.0, 13.0], 400.0);
        m.record_batch(2, &[20.0, 21.0], 300.0);
        m.record_batch(4, &[10.0, 11.0, 12.0, 13.0], 400.0);
        let s = m.snapshot();
        assert_eq!(s.batch_histogram, vec![(2, 1), (4, 2)]);
        assert_eq!(s.completed, 10);
        assert_eq!(s.batches_executed, 3);
        assert!((s.mean_batch() - 10.0 / 3.0).abs() < 1e-12);
        // Per-request service: 400/4 = 100 (x8 requests), 300/2 = 150 (x2).
        let svc = s.virtual_service.unwrap();
        assert_eq!(svc.min(), 100.0);
        assert_eq!(svc.max(), 150.0);
    }

    #[test]
    fn epoch_windows_partition_service_samples() {
        let m = Metrics::new();
        m.record_batch(1, &[5.0], 100.0);
        assert_eq!(m.bump_epoch(), 1);
        m.record_batch(1, &[5.0], 900.0);
        m.record_batch(1, &[5.0], 1100.0);
        assert_eq!(m.bump_epoch(), 2);
        m.record_batch(1, &[5.0], 200.0);
        assert_eq!(m.epoch_service_stats(0).unwrap().p50(), 100.0);
        assert_eq!(m.epoch_service_stats(1).unwrap().max(), 1100.0);
        assert_eq!(m.epoch_service_stats(2).unwrap().p50(), 200.0);
        assert!(m.epoch_service_stats(3).is_none());
    }

    #[test]
    fn latency_windows_stay_bounded_under_sustained_load() {
        let m = Metrics::new();
        for i in 0..20_000u64 {
            m.record_batch(4, &[i as f64; 4], 400.0);
        }
        let s = m.snapshot();
        assert_eq!(s.completed, 80_000);
        let sojourn = s.sojourn.unwrap();
        assert!(sojourn.count() <= RESERVOIR_CAP, "reservoir is bounded");
        assert_eq!(s.batch_histogram, vec![(4, 20_000)]);
        assert!(m.epoch_service_stats(0).is_some());
    }

    #[test]
    fn queue_depth_pairs_inc_and_dec() {
        let m = Metrics::new();
        for _ in 0..5 {
            m.queue_inc();
        }
        assert_eq!(m.queue_depth(), 5);
        m.queue_dec(3);
        m.queue_dec(2);
        assert_eq!(m.queue_depth(), 0);
    }
}
