//! Serving metrics: counters, gauges and latency windows.
//!
//! Two latency domains coexist and must not be mixed:
//!
//! * **wall-clock** — what the host actually took (sojourn = queueing +
//!   batching linger + numeric execution). This is what a production SLA
//!   would bound, so sojourn percentiles are reported from wall time.
//! * **virtual** — latency on the *modeled* hardware (Xeon + Titan V),
//!   from the executor's virtual clock. The feedback loop compares
//!   virtual-measured against virtual-predicted, and the drift study
//!   compares per-epoch virtual service, because only the virtual domain
//!   is affected by an injected system-model change.
//!
//! Service samples are normalized per request (`batch latency / batch
//! size`) so epochs with different batch-size mixes stay comparable.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use duet_runtime::LatencyStats;
use parking_lot::Mutex;

/// Epoch indices: 0 until the system model changes, bumped on every
/// injected change and on every plan hot-swap. The drift experiment
/// reads epoch 1 as "drifted, stale plan" and epoch 2 as "post-swap".
#[derive(Debug, Default)]
pub struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed_queue_full: AtomicU64,
    pub shed_expired: AtomicU64,
    pub exec_errors: AtomicU64,
    pub batches_executed: AtomicU64,
    pub plan_swaps: AtomicU64,
    pub queue_depth: AtomicUsize,
    epoch: AtomicUsize,
    batch_hist: Mutex<Vec<(usize, u64)>>,
    sojourn_us: Mutex<Vec<f64>>,
    epoch_service_us: Mutex<Vec<(usize, f64)>>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Current epoch index.
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Enter the next epoch (system change or plan swap).
    pub fn bump_epoch(&self) -> usize {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record one executed batch: its size, and each member request's
    /// wall sojourn plus per-request virtual service share.
    pub fn record_batch(&self, batch: usize, sojourns_us: &[f64], virtual_batch_us: f64) {
        self.batches_executed.fetch_add(1, Ordering::Relaxed);
        self.completed
            .fetch_add(sojourns_us.len() as u64, Ordering::Relaxed);
        {
            let mut hist = self.batch_hist.lock();
            match hist.iter_mut().find(|(b, _)| *b == batch) {
                Some((_, n)) => *n += 1,
                None => {
                    hist.push((batch, 1));
                    hist.sort_unstable();
                }
            }
        }
        self.sojourn_us.lock().extend_from_slice(sojourns_us);
        let epoch = self.epoch();
        let per_request = virtual_batch_us / batch as f64;
        let mut svc = self.epoch_service_us.lock();
        for _ in 0..sojourns_us.len() {
            svc.push((epoch, per_request));
        }
    }

    /// Latency summary of per-request virtual service in one epoch.
    pub fn epoch_service_stats(&self, epoch: usize) -> Option<LatencyStats> {
        let samples: Vec<f64> = self
            .epoch_service_us
            .lock()
            .iter()
            .filter(|(e, _)| *e == epoch)
            .map(|(_, v)| *v)
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(LatencyStats::from_samples(samples))
        }
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let sojourn_samples = self.sojourn_us.lock().clone();
        let service_samples: Vec<f64> = self
            .epoch_service_us
            .lock()
            .iter()
            .map(|(_, v)| *v)
            .collect();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            plan_swaps: self.plan_swaps.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            epoch: self.epoch(),
            batch_histogram: self.batch_hist.lock().clone(),
            sojourn: (!sojourn_samples.is_empty())
                .then(|| LatencyStats::from_samples(sojourn_samples)),
            virtual_service: (!service_samples.is_empty())
                .then(|| LatencyStats::from_samples(service_samples)),
        }
    }
}

/// Owned summary of a [`Metrics`] instance.
#[derive(Debug)]
pub struct MetricsSnapshot {
    pub submitted: u64,
    pub completed: u64,
    pub shed_queue_full: u64,
    pub shed_expired: u64,
    pub exec_errors: u64,
    pub batches_executed: u64,
    pub plan_swaps: u64,
    pub queue_depth: usize,
    pub epoch: usize,
    /// (batch size, number of batches executed at that size).
    pub batch_histogram: Vec<(usize, u64)>,
    /// Wall-clock sojourn (queueing + linger + execution), microseconds.
    pub sojourn: Option<LatencyStats>,
    /// Per-request virtual service (modeled hardware), microseconds.
    pub virtual_service: Option<LatencyStats>,
}

impl MetricsSnapshot {
    /// Total requests shed (admission + expiry).
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_expired
    }

    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        let (sum, n) = self
            .batch_histogram
            .iter()
            .fold((0u64, 0u64), |(s, n), &(b, c)| (s + b as u64 * c, n + c));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_has_no_stats() {
        let m = Metrics::new();
        let s = m.snapshot();
        assert!(s.sojourn.is_none());
        assert!(s.virtual_service.is_none());
        assert_eq!(s.shed(), 0);
        assert_eq!(s.mean_batch(), 0.0);
    }

    #[test]
    fn batches_are_histogrammed_and_normalized_per_request() {
        let m = Metrics::new();
        m.record_batch(4, &[10.0, 11.0, 12.0, 13.0], 400.0);
        m.record_batch(2, &[20.0, 21.0], 300.0);
        m.record_batch(4, &[10.0, 11.0, 12.0, 13.0], 400.0);
        let s = m.snapshot();
        assert_eq!(s.batch_histogram, vec![(2, 1), (4, 2)]);
        assert_eq!(s.completed, 10);
        assert_eq!(s.batches_executed, 3);
        assert!((s.mean_batch() - 10.0 / 3.0).abs() < 1e-12);
        // Per-request service: 400/4 = 100 (x8 requests), 300/2 = 150 (x2).
        let svc = s.virtual_service.unwrap();
        assert_eq!(svc.min(), 100.0);
        assert_eq!(svc.max(), 150.0);
    }

    #[test]
    fn epoch_windows_partition_service_samples() {
        let m = Metrics::new();
        m.record_batch(1, &[5.0], 100.0);
        assert_eq!(m.bump_epoch(), 1);
        m.record_batch(1, &[5.0], 900.0);
        m.record_batch(1, &[5.0], 1100.0);
        assert_eq!(m.bump_epoch(), 2);
        m.record_batch(1, &[5.0], 200.0);
        assert_eq!(m.epoch_service_stats(0).unwrap().p50(), 100.0);
        assert_eq!(m.epoch_service_stats(1).unwrap().max(), 1100.0);
        assert_eq!(m.epoch_service_stats(2).unwrap().p50(), 200.0);
        assert!(m.epoch_service_stats(3).is_none());
    }
}
