//! The serving runtime: per-model dynamic batcher, SLA admission,
//! plan-cache-backed execution and the drift feedback loop.
//!
//! One worker thread per registered model owns that model's execution
//! (the paper's engine is a dedicated per-model deployment). The worker:
//!
//! 1. blocks on the bounded request queue (the queue bound *is* the
//!    admission control — a full queue sheds at submit time);
//! 2. on the first request, lingers up to `ServeConfig::linger` to
//!    coalesce more arrivals, up to `max_batch`;
//! 3. drops requests whose SLA deadline already expired;
//! 4. executes the batch on the engine variant for its size (rounded
//!    down to a power of two, so the plan cache holds at most
//!    `log2(max_batch)+1` variants), through the current system model;
//! 5. feeds measured-vs-predicted virtual latency to the drift monitor,
//!    and on sustained drift re-corrects every cached plan against the
//!    observed system and atomically publishes the result (hot swap).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use duet_device::SystemModel;
use duet_telemetry::registry as tm;
use duet_telemetry::{clock_us, record_span_traced, Span, SpanKind, TraceContext};
use duet_tensor::Tensor;

use crate::batch::{merge_feeds, split_outputs};
use crate::cache::{ArcCell, PlanCache};
use crate::feedback::{DriftMonitor, FeedbackConfig};
use crate::flight::{
    AnomalyRule, DumpPayload, FlightRecorder, RequestTrace, SloConfig, SloMonitor,
};
use crate::insight::Attribution;
use crate::metrics::Metrics;
use crate::spec::ModelSpec;
use crate::ServeError;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch the coalescer will form.
    pub max_batch: usize,
    /// How long the batcher waits past the first pending request for
    /// more arrivals.
    pub linger: Duration,
    /// Bounded queue depth per model — admission control: submits
    /// beyond this shed immediately with [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Drift detection tuning.
    pub feedback: FeedbackConfig,
    /// Build the batch-1 and max-batch engines at registration time so
    /// the first requests don't pay the offline-pipeline cost inline.
    pub prewarm: bool,
    /// When drift is confirmed, answer with the full autotuner
    /// ([`PlanCache::tune_all`]) instead of Algorithm 1's recorrection
    /// alone. Finds strictly better plans on most of the zoo under
    /// drift, at a higher (but budget-bounded) swap cost.
    pub tune_on_drift: bool,
    /// Per-request sojourn SLO; a burn (threshold breaches within the
    /// sliding window) fires the flight recorder. `None` disables SLO
    /// monitoring entirely.
    pub slo: Option<SloConfig>,
    /// Where an anomaly-triggered flight dump lands. `None` keeps the
    /// in-memory ring (still inspectable via [`ServeServer::flight`])
    /// but never writes a dump.
    pub flight_dir: Option<PathBuf>,
    /// How many completed request traces the flight ring retains.
    pub flight_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            linger: Duration::from_millis(2),
            queue_cap: 256,
            feedback: FeedbackConfig::default(),
            prewarm: true,
            tune_on_drift: false,
            slo: None,
            flight_dir: None,
            flight_capacity: 64,
        }
    }
}

/// One completed inference.
#[derive(Debug)]
pub struct ServeResponse {
    /// Output tensors, keyed by output node label.
    pub outputs: HashMap<String, Tensor>,
    /// Size of the batch this request was coalesced into.
    pub batch_size: usize,
    /// This request's share of the batch's virtual (modeled-hardware)
    /// latency: batch latency / batch size, microseconds.
    pub virtual_service_us: f64,
    /// Wall-clock sojourn: submit to completion.
    pub sojourn: Duration,
    /// Metrics epoch the request completed in.
    pub epoch: usize,
    /// Causal trace id minted at admission — the key that joins this
    /// response to its span tree in `/metrics` exemplars and flight
    /// dumps.
    pub trace_id: u64,
    /// Where the sojourn went, segment by segment; sums to `sojourn`.
    pub attribution: Attribution,
}

/// Awaitable handle for a submitted request.
#[derive(Debug)]
pub struct ServeHandle {
    rx: Receiver<Result<ServeResponse, ServeError>>,
}

impl ServeHandle {
    /// Block until the response arrives.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ServeError::Exec("response channel closed".into())))
    }

    /// Block with a timeout; `None` means the deadline passed first.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<ServeResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                Some(Err(ServeError::Exec("response channel closed".into())))
            }
        }
    }
}

struct Pending {
    feeds: HashMap<String, Tensor>,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// When the batcher pulled this request off the queue; stamped by
    /// the worker, `None` until then.
    pulled: Option<Instant>,
    /// Causal trace context minted at admission: the trace id and the
    /// root (request) span id.
    trace: TraceContext,
    tx: Sender<Result<ServeResponse, ServeError>>,
}

struct ModelHandle {
    tx: Sender<Pending>,
    metrics: Arc<Metrics>,
    system: Arc<ArcCell<SystemModel>>,
    cache: Arc<PlanCache>,
    flight: Arc<FlightRecorder>,
    worker: Option<JoinHandle<()>>,
}

/// The engine registry + per-model serving workers.
pub struct ServeServer {
    cfg: ServeConfig,
    models: HashMap<String, ModelHandle>,
}

impl ServeServer {
    pub fn new(cfg: ServeConfig) -> Self {
        ServeServer {
            cfg,
            models: HashMap::new(),
        }
    }

    /// Register a model and start its serving worker. Engines are built
    /// against `system` (and re-corrected if the feedback loop later
    /// observes the deployed system drifting away from it).
    pub fn register(&mut self, spec: ModelSpec, system: SystemModel) {
        let name = spec.name().to_string();
        let cache = Arc::new(PlanCache::new(spec, system.clone()));
        if self.cfg.prewarm {
            cache.get_or_build(1);
            let top = largest_pow2(self.cfg.max_batch);
            if top > 1 {
                cache.get_or_build(top);
            }
        }
        let metrics = Arc::new(Metrics::new());
        let system = Arc::new(ArcCell::new(system));
        let flight = Arc::new(FlightRecorder::new(
            self.cfg.flight_capacity,
            self.cfg.flight_dir.clone(),
        ));
        let (tx, rx) = bounded::<Pending>(self.cfg.queue_cap);
        let worker = {
            let cache = cache.clone();
            let system = system.clone();
            let metrics = metrics.clone();
            let flight = flight.clone();
            let cfg = self.cfg.clone();
            std::thread::Builder::new()
                .name(format!("duet-serve:{name}"))
                .spawn(move || worker_loop(rx, cache, system, metrics, flight, cfg))
                .expect("spawn serving worker")
        };
        self.models.insert(
            name,
            ModelHandle {
                tx,
                metrics,
                system,
                cache,
                flight,
                worker: Some(worker),
            },
        );
    }

    /// Registered model names.
    pub fn models(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Submit one request. `sla` is the request's end-to-end budget: if
    /// it elapses before execution starts, the request is shed with
    /// [`ServeError::Expired`] instead of wasting a batch slot.
    pub fn submit(
        &self,
        model: &str,
        feeds: HashMap<String, Tensor>,
        sla: Option<Duration>,
    ) -> Result<ServeHandle, ServeError> {
        let handle = self
            .models
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        handle.metrics.inc_submitted();
        let now = Instant::now();
        let trace = TraceContext::root();
        let (tx, rx) = bounded(1);
        let pending = Pending {
            feeds,
            deadline: sla.map(|d| now + d),
            enqueued: now,
            pulled: None,
            trace,
            tx,
        };
        // Inc *before* try_send so the worker (which decs per pulled
        // request) can never observe depth below zero; a failed send
        // rolls the inc back.
        handle.metrics.queue_inc();
        match handle.tx.try_send(pending) {
            Ok(()) => Ok(ServeHandle { rx }),
            Err(TrySendError::Full(_)) => {
                handle.metrics.queue_dec(1);
                handle.metrics.shed_queue_full();
                if handle.flight.armed() {
                    let system = (*handle.system.load()).clone();
                    handle.flight.trigger(AnomalyRule::Shed, || {
                        anomaly_payload(&handle.cache, &system, trace.trace_id)
                    });
                }
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                handle.metrics.queue_dec(1);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The model's metrics.
    pub fn metrics(&self, model: &str) -> Option<Arc<Metrics>> {
        self.models.get(model).map(|h| h.metrics.clone())
    }

    /// The model's plan cache.
    pub fn cache(&self, model: &str) -> Option<Arc<PlanCache>> {
        self.models.get(model).map(|h| h.cache.clone())
    }

    /// The model's flight recorder (trace ring + anomaly dump latch).
    pub fn flight(&self, model: &str) -> Option<Arc<FlightRecorder>> {
        self.models.get(model).map(|h| h.flight.clone())
    }

    /// Replace the model's *deployed* system model (drift injection for
    /// tests and the load generator — in production this is the slot a
    /// hardware telemetry feed would write). Bumps the metrics epoch so
    /// pre- and post-drift samples stay separable.
    pub fn inject_system(&self, model: &str, system: SystemModel) -> bool {
        match self.models.get(model) {
            Some(h) => {
                h.system.store(Arc::new(system));
                h.metrics.bump_epoch();
                true
            }
            None => false,
        }
    }

    /// Run `feeds` as a single batch-1 request directly on the cached
    /// engine, bypassing the queue — the reference the bit-identity
    /// verification compares batched responses against.
    pub fn reference_run(
        &self,
        model: &str,
        feeds: &HashMap<String, Tensor>,
    ) -> Result<HashMap<String, Tensor>, ServeError> {
        let handle = self
            .models
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let variant = handle.cache.get_or_build(1);
        let merged = merge_feeds(variant.duet.graph(), &[feeds])?;
        let system = (*handle.system.load()).clone();
        let outcome = variant
            .duet
            .executor_with(system)
            .run(&merged)
            .map_err(|e| ServeError::Exec(e.to_string()))?;
        let mut split = split_outputs(variant.duet.graph(), &outcome.outputs, 1)?;
        Ok(split.pop().expect("one request, one output map"))
    }

    /// Execute one witnessed batch-1 request and run the `duet-analysis`
    /// D3xx runtime-conformance checker on the recorded event log.
    pub fn witness_check(
        &self,
        model: &str,
        seed: u64,
    ) -> Result<duet_analysis::Report, ServeError> {
        let handle = self
            .models
            .get(model)
            .ok_or_else(|| ServeError::UnknownModel(model.to_string()))?;
        let variant = handle.cache.get_or_build(1);
        let feeds = handle.cache.spec().request_feeds(seed);
        let merged = merge_feeds(variant.duet.graph(), &[&feeds])?;
        let system = (*handle.system.load()).clone();
        let (_, witness) = variant
            .duet
            .executor_with(system.clone())
            .run_witnessed(&merged)
            .map_err(|e| ServeError::Exec(e.to_string()))?;
        Ok(duet_analysis::check_witness(
            variant.duet.graph(),
            variant.duet.placed(),
            &system,
            &witness,
            &duet_analysis::WitnessCheckConfig::default(),
        ))
    }
}

impl Drop for ServeServer {
    fn drop(&mut self) {
        // Closing the request channels lets each worker drain what it
        // already pulled and exit; then join so no thread outlives the
        // registry.
        for (_, mut handle) in self.models.drain() {
            drop(handle.tx);
            if let Some(worker) = handle.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

/// Largest power of two `<= n` (n > 0).
fn largest_pow2(n: usize) -> usize {
    1 << n.ilog2()
}

fn worker_loop(
    rx: Receiver<Pending>,
    cache: Arc<PlanCache>,
    system: Arc<ArcCell<SystemModel>>,
    metrics: Arc<Metrics>,
    flight: Arc<FlightRecorder>,
    cfg: ServeConfig,
) {
    let mut monitor = DriftMonitor::new(cfg.feedback.clone());
    let mut slo = cfg.slo.clone().map(SloMonitor::new);
    loop {
        // Block for the first request; a closed channel is shutdown.
        let mut first = match rx.recv() {
            Ok(p) => p,
            Err(_) => return,
        };
        first.pulled = Some(Instant::now());
        let mut batch = vec![first];
        // Greedily drain whatever is already queued: under backlog the
        // batch should fill instantly instead of waiting out a linger
        // window that expired while the oldest request sat in the queue.
        while batch.len() < cfg.max_batch {
            match rx.try_recv() {
                Some(mut p) => {
                    p.pulled = Some(Instant::now());
                    batch.push(p);
                }
                None => break,
            }
        }
        // Linger relative to the oldest pending request so a request's
        // added latency is bounded by `linger` regardless of arrivals.
        let linger_deadline = batch[0].enqueued + cfg.linger;
        while batch.len() < cfg.max_batch {
            let now = Instant::now();
            let Some(remaining) = linger_deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            match rx.recv_timeout(remaining) {
                Ok(mut p) => {
                    p.pulled = Some(Instant::now());
                    batch.push(p);
                }
                Err(_) => break,
            }
        }
        // One dec per request pulled off the queue — the exact pair of
        // the submit-side inc, so depth drains back to zero (expired
        // requests included: they left the queue too).
        metrics.queue_dec(batch.len());

        // SLA expiry: shed requests whose budget elapsed while queued.
        let now = Instant::now();
        let (live, expired): (Vec<_>, Vec<_>) = batch
            .into_iter()
            .partition(|p| p.deadline.is_none_or(|d| d > now));
        for p in expired {
            metrics.shed_expired();
            if flight.armed() {
                let deployed = (*system.load()).clone();
                flight.trigger(AnomalyRule::Shed, || {
                    anomaly_payload(&cache, &deployed, p.trace.trace_id)
                });
            }
            let _ = p.tx.send(Err(ServeError::Expired));
        }

        // Execute in power-of-two chunks (largest first) so every chunk
        // maps to a cached engine variant.
        let mut rest = live;
        while !rest.is_empty() {
            let k = largest_pow2(rest.len().min(cfg.max_batch));
            let chunk: Vec<Pending> = rest.drain(..k).collect();
            execute_chunk(
                chunk,
                &cache,
                &system,
                &metrics,
                &flight,
                &mut monitor,
                &mut slo,
                &cfg,
            );
        }
    }
}

/// Build the forensic context for a flight dump: the serving batch-1
/// plan, the deployed system model and one freshly witnessed batch-1
/// run. Only called when a dump is actually about to be written (the
/// dump-once latch means each server process pays this at most once).
fn anomaly_payload(cache: &PlanCache, system: &SystemModel, trigger_trace: u64) -> DumpPayload {
    let variant = cache.get_or_build(1);
    let witness_json = (|| {
        let feeds = cache.spec().request_feeds(0);
        let merged = merge_feeds(variant.duet.graph(), &[&feeds]).ok()?;
        let (_, witness) = variant
            .duet
            .executor_with(system.clone())
            .run_witnessed(&merged)
            .ok()?;
        serde_json::to_string_pretty(&witness).ok()
    })();
    DumpPayload {
        model: cache.spec().name().to_string(),
        plan_json: variant.plan.to_json(),
        plan_fingerprint: variant.plan.fingerprint,
        system_json: serde_json::to_string_pretty(system).expect("system model serializes"),
        witness_json,
        trigger_trace_id: trigger_trace,
    }
}

/// Publish a span to the global telemetry ring (the flight ring gets
/// the owned `Span` structs separately, so dumps are complete even with
/// span recording disabled).
fn ring_span(s: &Span) {
    record_span_traced(
        s.kind,
        s.detail,
        s.start_us,
        s.dur_us,
        s.arg0,
        s.arg1,
        s.trace_id,
        s.span_id,
        s.parent_id,
    );
}

#[allow(clippy::too_many_arguments)]
fn execute_chunk(
    chunk: Vec<Pending>,
    cache: &PlanCache,
    system: &ArcCell<SystemModel>,
    metrics: &Metrics,
    flight: &FlightRecorder,
    monitor: &mut DriftMonitor,
    slo: &mut Option<SloMonitor>,
    cfg: &ServeConfig,
) {
    let k = chunk.len();
    let variant = cache.get_or_build(k);
    let deployed = (*system.load()).clone();

    let fail_all = |chunk: Vec<Pending>, err: ServeError| {
        metrics.exec_error();
        for p in chunk {
            let _ = p.tx.send(Err(err.clone()));
        }
    };

    let t_exec = Instant::now();
    let req_feeds: Vec<&HashMap<String, Tensor>> = chunk.iter().map(|p| &p.feeds).collect();
    let feeds = match merge_feeds(variant.duet.graph(), &req_feeds) {
        Ok(f) => f,
        Err(e) => return fail_all(chunk, e),
    };
    // Causal context: the shared batch span is a child of the *oldest*
    // request's root, so at least one trace id runs admission → batch →
    // subgraph → kernel unbroken; every other member links to the batch
    // span through its exec span's arg0.
    let lead = chunk[0].trace;
    let batch_ctx = lead.child();
    // Execute through the *deployed* system model, not the one the plan
    // was built against — that gap is exactly what the drift monitor
    // measures.
    // The engine-owned arena pool makes this steady-state path recycle
    // its tape buffers across requests.
    let t_run_start = Instant::now();
    let outcome = match variant
        .duet
        .executor_with(deployed.clone())
        .with_trace(batch_ctx)
        .run(&feeds)
    {
        Ok(o) => o,
        Err(e) => return fail_all(chunk, ServeError::Exec(e.to_string())),
    };
    let run_wall_us = t_run_start.elapsed().as_secs_f64() * 1e6;
    let pieces = match split_outputs(variant.duet.graph(), &outcome.outputs, k) {
        Ok(p) => p,
        Err(e) => return fail_all(chunk, e),
    };

    let done = Instant::now();
    let sojourns_us: Vec<f64> = chunk
        .iter()
        .map(|p| done.duration_since(p.enqueued).as_secs_f64() * 1e6)
        .collect();
    let epoch = metrics.epoch();
    metrics.record_batch(k, &sojourns_us, outcome.virtual_latency_us);

    // Anchor for converting `Instant`s into the telemetry wall clock:
    // one sample serves every span of this batch.
    let anchor = Instant::now();
    let anchor_us = clock_us();
    let us_of = |t: Instant| anchor_us - anchor.saturating_duration_since(t).as_secs_f64() * 1e6;
    let exec_wall_us = done.duration_since(t_exec).as_secs_f64() * 1e6;
    let batch_span = Span {
        seq: 0,
        kind: SpanKind::ServeBatch,
        detail: k as u64,
        start_us: us_of(t_exec),
        dur_us: exec_wall_us,
        arg0: outcome.virtual_latency_us,
        arg1: 0.0,
        trace_id: batch_ctx.trace_id,
        span_id: batch_ctx.span_id,
        parent_id: lead.span_id,
    };
    ring_span(&batch_span);

    // Feedback: measured vs predicted, both in the virtual domain. A
    // sustained gap means the deployed system no longer matches the one
    // the plans were corrected against → re-correct and hot-swap every
    // cached variant, once.
    if monitor.observe(outcome.virtual_latency_us, variant.duet.latency_us()) {
        let (swapped, rejected) = if cfg.tune_on_drift {
            cache.tune_all(&deployed)
        } else {
            cache.recorrect_all(&deployed)
        };
        if rejected > 0 {
            metrics.plan_swap_rejected(rejected as u64);
            if flight.armed() {
                flight.trigger(AnomalyRule::SwapRefused, || {
                    anomaly_payload(cache, &deployed, 0)
                });
            }
        }
        if swapped > 0 {
            metrics.plan_swap();
            if flight.armed() {
                flight.trigger(AnomalyRule::DriftSwap, || {
                    anomaly_payload(cache, &deployed, 0)
                });
            }
        }
        metrics.bump_epoch();
        monitor.reset();
    }

    let plan_fingerprint = variant.plan.fingerprint;
    let model = cache.spec().name().to_string();
    for ((p, piece), sojourn_us) in chunk.into_iter().zip(pieces).zip(sojourns_us) {
        let pulled = p.pulled.unwrap_or(t_exec);
        let queue_us = pulled.saturating_duration_since(p.enqueued).as_secs_f64() * 1e6;
        let linger_us = t_exec.saturating_duration_since(pulled).as_secs_f64() * 1e6;
        // Per-member execution share is the sojourn remainder, so the
        // attribution sums to the measured sojourn *exactly*.
        let attribution = Attribution::attribute(
            queue_us,
            linger_us,
            sojourn_us - queue_us - linger_us,
            run_wall_us,
            &outcome.breakdown,
        );
        let tid = p.trace.trace_id;
        tm::SERVE_SEGMENT_QUEUE.observe_exemplar(attribution.queue_us as u64, tid);
        tm::SERVE_SEGMENT_LINGER.observe_exemplar(attribution.linger_us as u64, tid);
        tm::SERVE_SEGMENT_COMPUTE_CPU.observe_exemplar(attribution.compute_cpu_us as u64, tid);
        tm::SERVE_SEGMENT_COMPUTE_GPU.observe_exemplar(attribution.compute_gpu_us as u64, tid);
        tm::SERVE_SEGMENT_TRANSFER.observe_exemplar(attribution.transfer_us as u64, tid);
        tm::SERVE_SEGMENT_OVERHEAD.observe_exemplar(attribution.overhead_us as u64, tid);
        // Sojourn was already observed by `record_batch`; only attach
        // the trace linkage here.
        tm::SERVE_SOJOURN_US.exemplar_hint(sojourn_us as u64, tid);

        // The request's own span tree: root + one span per segment
        // phase, children of the root.
        let queue_ctx = p.trace.child();
        let linger_ctx = p.trace.child();
        let exec_ctx = p.trace.child();
        let member_spans = [
            Span {
                seq: 0,
                kind: SpanKind::ServeRequest,
                detail: k as u64,
                start_us: us_of(p.enqueued),
                dur_us: sojourn_us,
                arg0: 0.0,
                arg1: 0.0,
                trace_id: tid,
                span_id: p.trace.span_id,
                parent_id: 0,
            },
            Span {
                seq: 1,
                kind: SpanKind::ServeQueue,
                detail: 0,
                start_us: us_of(p.enqueued),
                dur_us: queue_us,
                arg0: 0.0,
                arg1: 0.0,
                trace_id: tid,
                span_id: queue_ctx.span_id,
                parent_id: p.trace.span_id,
            },
            Span {
                seq: 2,
                kind: SpanKind::ServeLinger,
                detail: 0,
                start_us: us_of(pulled),
                dur_us: linger_us,
                arg0: 0.0,
                arg1: 0.0,
                trace_id: tid,
                span_id: linger_ctx.span_id,
                parent_id: p.trace.span_id,
            },
            Span {
                seq: 3,
                kind: SpanKind::ServeExec,
                detail: k as u64,
                // arg0 links into the shared batch span (which lives in
                // the lead request's trace).
                start_us: us_of(t_exec),
                dur_us: exec_wall_us,
                arg0: batch_ctx.span_id as f64,
                arg1: 0.0,
                trace_id: tid,
                span_id: exec_ctx.span_id,
                parent_id: p.trace.span_id,
            },
        ];
        for s in &member_spans {
            ring_span(s);
        }

        // Flight ring: the member's own tree plus the shared batch and
        // executor spans, so a dumped trace replays end to end.
        let mut spans = member_spans.to_vec();
        spans.push(batch_span);
        spans.extend(outcome.trace_spans.iter().copied());
        flight.record(Arc::new(RequestTrace {
            trace_id: tid,
            model: model.clone(),
            batch: k,
            epoch,
            plan_fingerprint,
            sojourn_us,
            attribution,
            spans,
        }));

        // SLO accounting, and the flight trigger on a burn.
        if let Some(m) = slo.as_mut() {
            let verdict = m.observe(sojourn_us);
            if verdict.breached {
                tm::SERVE_SLO_BREACHES.inc();
            }
            if verdict.burning && flight.armed() {
                flight.trigger(AnomalyRule::SloBurn, || {
                    anomaly_payload(cache, &deployed, tid)
                });
            }
        }

        let _ = p.tx.send(Ok(ServeResponse {
            outputs: piece,
            batch_size: k,
            virtual_service_us: outcome.virtual_latency_us / k as f64,
            sojourn: Duration::from_secs_f64(sojourn_us / 1e6),
            epoch,
            trace_id: tid,
            attribution,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_rounding() {
        assert_eq!(largest_pow2(1), 1);
        assert_eq!(largest_pow2(2), 2);
        assert_eq!(largest_pow2(3), 2);
        assert_eq!(largest_pow2(7), 4);
        assert_eq!(largest_pow2(8), 8);
        assert_eq!(largest_pow2(9), 8);
    }

    fn mlp_server(cfg: ServeConfig) -> ServeServer {
        let mut s = ServeServer::new(cfg);
        s.register(
            ModelSpec::serving_zoo("mlp").unwrap(),
            SystemModel::paper_server(),
        );
        s
    }

    #[test]
    fn single_request_round_trips() {
        let server = mlp_server(ServeConfig {
            linger: Duration::from_micros(100),
            ..ServeConfig::default()
        });
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let feeds = spec.request_feeds(7);
        let resp = server
            .submit("mlp", feeds.clone(), None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.batch_size, 1);
        assert!(resp.virtual_service_us > 0.0);
        // Bit-identical to the direct reference run.
        let want = server.reference_run("mlp", &feeds).unwrap();
        assert_eq!(resp.outputs, want);
        let m = server.metrics("mlp").unwrap().snapshot();
        assert_eq!((m.submitted, m.completed, m.shed()), (1, 1, 0));
    }

    #[test]
    fn unknown_model_is_rejected() {
        let server = mlp_server(ServeConfig::default());
        let err = server.submit("nope", HashMap::new(), None).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
    }

    #[test]
    fn zero_sla_requests_expire_instead_of_executing() {
        let server = mlp_server(ServeConfig {
            linger: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let h = server
            .submit("mlp", spec.request_feeds(1), Some(Duration::ZERO))
            .unwrap();
        assert!(matches!(h.wait(), Err(ServeError::Expired)));
        let m = server.metrics("mlp").unwrap().snapshot();
        assert_eq!(m.shed_expired, 1);
        assert_eq!(m.completed, 0);
    }
}
