//! Model specifications for serving.
//!
//! A serving deployment needs to *rebuild* its model at different batch
//! sizes: the dynamic batcher coalesces requests into batches, and per
//! Fig. 17 the optimal placement shifts with batch size (GPU occupancy
//! grows with batch), so the plan cache keeps one compiled engine per
//! (model, batch). A [`ModelSpec`] packages the model-family constructor
//! as a `batch -> Graph` closure plus the batch-1 reference graph the
//! server validates requests against.
//!
//! Request tensors are keyed by *input label* (e.g. `"cnn.image"`), not
//! node id — node ids differ between the batch-1 and batch-`B` optimized
//! graphs, labels do not.

use std::collections::HashMap;

use duet_ir::Graph;
use duet_models::{mlp, siamese, wide_and_deep, MlpConfig, SiameseConfig, WideAndDeepConfig};
use duet_tensor::Tensor;

/// The batch axis of an input tensor, by label convention.
///
/// Text inputs are laid out `[seq, batch, embed]` (the LSTM convention
/// used by the zoo's `.text` inputs), so they batch along axis 1; every
/// other input is batch-major and batches along axis 0.
pub fn batch_axis(label: &str) -> usize {
    if label.contains(".text") {
        1
    } else {
        0
    }
}

/// A servable model family: name + graph constructor per batch size.
pub struct ModelSpec {
    name: String,
    build: Box<dyn Fn(usize) -> Graph + Send + Sync>,
    reference: Graph,
}

impl std::fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSpec")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ModelSpec {
    /// Wrap a `batch -> Graph` constructor. The constructor must produce
    /// structurally identical graphs that differ only in batch extent
    /// (same weights, same labels) — that is what makes batched
    /// execution bit-identical to individual batch-1 runs.
    pub fn new(
        name: impl Into<String>,
        build: impl Fn(usize) -> Graph + Send + Sync + 'static,
    ) -> Self {
        let reference = build(1);
        ModelSpec {
            name: name.into(),
            build: Box::new(build),
            reference,
        }
    }

    /// Serving-scale members of the model zoo, by name.
    ///
    /// These are deliberately smaller than the paper-scale defaults: an
    /// online server must execute the host-side numerics per request, so
    /// the configs target low-millisecond wall latency while keeping
    /// every heterogeneous branch of the original architecture.
    /// `"wide_deep"` is accepted as an alias of `"wide_and_deep"`.
    pub fn serving_zoo(name: &str) -> Option<ModelSpec> {
        match name {
            "wide_deep" | "wide_and_deep" => Some(ModelSpec::new("wide_and_deep", |batch| {
                wide_and_deep(&WideAndDeepConfig {
                    batch,
                    wide_features: 512,
                    deep_features: 128,
                    ffn_hidden: 512,
                    ffn_layers: 2,
                    seq_len: 16,
                    embed_dim: 64,
                    rnn_hidden: 128,
                    rnn_layers: 1,
                    cnn_depth: 18,
                    image: 48,
                    seed: 0xd0e7,
                })
            })),
            "mlp" => Some(ModelSpec::new("mlp", |batch| {
                mlp(&MlpConfig {
                    batch,
                    input: 256,
                    hidden: 512,
                    layers: 3,
                    classes: 10,
                    seed: 0x317,
                })
            })),
            "siamese" => Some(ModelSpec::new("siamese", |batch| {
                siamese(&SiameseConfig {
                    batch,
                    seq_len: 16,
                    embed_dim: 64,
                    hidden: 256,
                    rnn_layers: 1,
                    seed: 0x51a,
                })
            })),
            _ => None,
        }
    }

    /// Model family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Build the (unoptimized) graph at `batch`.
    pub fn graph_at(&self, batch: usize) -> Graph {
        (self.build)(batch)
    }

    /// The batch-1 reference graph.
    pub fn reference(&self) -> &Graph {
        &self.reference
    }

    /// Labels of the model's input tensors.
    pub fn input_labels(&self) -> Vec<String> {
        self.reference
            .input_ids()
            .iter()
            .map(|&id| self.reference.node(id).label.clone())
            .collect()
    }

    /// Deterministic batch-1 request feeds, keyed by input label.
    pub fn request_feeds(&self, seed: u64) -> HashMap<String, Tensor> {
        duet_models::input_feeds(&self.reference, seed)
            .into_iter()
            .map(|(id, t)| (self.reference.node(id).label.clone(), t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_inputs_batch_on_axis_one() {
        assert_eq!(batch_axis("rnn.text"), 1);
        assert_eq!(batch_axis("query.text"), 1);
        assert_eq!(batch_axis("cnn.image"), 0);
        assert_eq!(batch_axis("wide.features"), 0);
    }

    #[test]
    fn zoo_specs_batch_cleanly() {
        for name in ["wide_deep", "mlp", "siamese"] {
            let spec = ModelSpec::serving_zoo(name).unwrap();
            let g1 = spec.reference();
            let g4 = spec.graph_at(4);
            assert_eq!(g1.leading_batch(), Some(1), "{name}");
            assert_eq!(g4.leading_batch(), Some(4), "{name}");
            // Same inputs, identified by the same labels.
            assert_eq!(g1.input_ids().len(), g4.input_ids().len());
            for (&a, &b) in g1.input_ids().iter().zip(&g4.input_ids()) {
                assert_eq!(g1.node(a).label, g4.node(b).label);
            }
        }
    }

    #[test]
    fn alias_resolves_to_wide_and_deep() {
        let spec = ModelSpec::serving_zoo("wide_deep").unwrap();
        assert_eq!(spec.name(), "wide_and_deep");
        assert!(ModelSpec::serving_zoo("nope").is_none());
    }

    #[test]
    fn request_feeds_cover_every_input() {
        let spec = ModelSpec::serving_zoo("wide_deep").unwrap();
        let feeds = spec.request_feeds(3);
        let labels = spec.input_labels();
        assert_eq!(feeds.len(), labels.len());
        for l in &labels {
            assert!(feeds.contains_key(l), "missing feed for {l}");
        }
        // Text feed is [seq, 1, embed] — batch extent 1 on axis 1.
        assert_eq!(feeds["rnn.text"].shape().dim(1), 1);
    }
}
