//! Integration tests: the live threaded server end to end.
//!
//! The load-bearing property is *bit-identity*: dynamically batched
//! execution must return exactly the bytes a batch-1 run of the same
//! request returns, across models, batch compositions and plan
//! hot-swaps. Everything else (coalescing, admission, drift response)
//! is observable through the metrics the server keeps.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use duet_device::SystemModel;
use duet_serve::loadgen::degraded_gpu;
use duet_serve::{FlightDump, ModelSpec, ServeConfig, ServeError, ServeServer, SloConfig};
use duet_telemetry::SpanKind;
use proptest::prelude::*;

fn server_for(model: &str, cfg: ServeConfig) -> ServeServer {
    let mut s = ServeServer::new(cfg);
    s.register(
        ModelSpec::serving_zoo(model).unwrap(),
        SystemModel::paper_server(),
    );
    s
}

/// One shared mlp server for the property test — registration compiles
/// engines, which is too expensive to repeat per proptest case.
fn shared_mlp() -> &'static ServeServer {
    static SERVER: OnceLock<ServeServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        server_for(
            "mlp",
            ServeConfig {
                max_batch: 4,
                linger: Duration::from_micros(500),
                ..ServeConfig::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (b): whatever batch the coalescer happens to form,
    /// every member's outputs are bit-identical to its own batch-1
    /// reference run. Submitting a burst per case makes multi-request
    /// batches common.
    #[test]
    fn batched_outputs_are_bit_identical_to_reference(seed in any::<u64>(), burst in 1usize..=4) {
        let server = shared_mlp();
        let spec = ModelSpec::serving_zoo("mlp").unwrap();
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                let feeds = spec.request_feeds(seed.wrapping_add(i as u64));
                server.submit("mlp", feeds, None).unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait().unwrap();
            let feeds = spec.request_feeds(seed.wrapping_add(i as u64));
            let want = server.reference_run("mlp", &feeds).unwrap();
            prop_assert_eq!(&resp.outputs, &want, "request {} of burst {}", i, burst);
        }
    }
}

/// Bit-identity holds for every zoo model, including the multi-branch
/// wide_and_deep and the axis-1 text-batched siamese.
#[test]
fn every_zoo_model_serves_bit_identical_batches() {
    for model in ["mlp", "siamese", "wide_and_deep"] {
        let server = server_for(
            model,
            ServeConfig {
                max_batch: 4,
                linger: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        );
        let spec = ModelSpec::serving_zoo(model).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                server
                    .submit(model, spec.request_feeds(100 + i), None)
                    .unwrap()
            })
            .collect();
        let mut max_batch = 0;
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.wait().unwrap();
            max_batch = max_batch.max(resp.batch_size);
            let want = server
                .reference_run(model, &spec.request_feeds(100 + i as u64))
                .unwrap();
            assert_eq!(resp.outputs, want, "{model} request {i}");
        }
        assert!(
            max_batch > 1,
            "{model}: burst never coalesced (max {max_batch})"
        );
    }
}

/// The batcher coalesces a burst submitted within the linger window
/// into one batch on the batch-appropriate engine variant.
#[test]
fn linger_window_coalesces_a_burst() {
    let server = server_for(
        "mlp",
        ServeConfig {
            max_batch: 4,
            linger: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    );
    let spec = ModelSpec::serving_zoo("mlp").unwrap();
    let handles: Vec<_> = (0..4)
        .map(|i| server.submit("mlp", spec.request_feeds(i), None).unwrap())
        .collect();
    for h in handles {
        let resp = h.wait().unwrap();
        assert_eq!(resp.batch_size, 4, "burst should form one full batch");
    }
    let m = server.metrics("mlp").unwrap().snapshot();
    assert_eq!(m.batches_executed, 1);
    assert_eq!(m.batch_histogram, vec![(4, 1)]);
    // The batch-4 engine variant exists; batch-2 was never needed.
    let cached = server.cache("mlp").unwrap().cached_batches();
    assert!(cached.contains(&4), "cached variants: {cached:?}");
}

/// Admission control: a burst far beyond the bounded queue sheds with
/// [`ServeError::QueueFull`] at submit time, and every accepted request
/// still completes.
#[test]
fn bounded_queue_sheds_bursts_beyond_capacity() {
    let server = server_for(
        "mlp",
        ServeConfig {
            max_batch: 1,
            linger: Duration::ZERO,
            queue_cap: 2,
            ..ServeConfig::default()
        },
    );
    let spec = ModelSpec::serving_zoo("mlp").unwrap();
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for i in 0..64 {
        match server.submit("mlp", spec.request_feeds(i), None) {
            Ok(h) => accepted.push(h),
            Err(ServeError::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(shed > 0, "64 instant submits must overflow a 2-deep queue");
    for h in accepted {
        h.wait().expect("accepted requests complete");
    }
    let m = server.metrics("mlp").unwrap().snapshot();
    assert_eq!(m.shed_queue_full, shed);
    assert_eq!(m.completed + m.shed_queue_full, 64);
}

/// The drift scenario, deterministically: serve on a healthy system,
/// inject a degraded one, keep serving. The feedback loop must fire
/// exactly one hot-swap, and the re-corrected plans must lower the
/// measured per-request virtual latency versus the stale-plan epoch.
/// Uses wide_and_deep — the one zoo model whose placement leans on the
/// GPU enough for GPU degradation to hurt.
#[test]
fn sustained_drift_hot_swaps_exactly_once_and_recovers() {
    let server = server_for("wide_and_deep", ServeConfig::default());
    let model = "wide_and_deep";
    let spec = ModelSpec::serving_zoo(model).unwrap();
    let metrics = server.metrics(model).unwrap();

    let mut seed = 0u64;
    let run_one = |server: &ServeServer, seed: &mut u64| {
        let resp = server
            .submit(model, spec.request_feeds(*seed), None)
            .unwrap()
            .wait()
            .unwrap();
        *seed += 1;
        resp
    };

    // Healthy baseline (epoch 0).
    for _ in 0..3 {
        assert_eq!(run_one(&server, &mut seed).epoch, 0);
    }
    assert!(server.inject_system(model, degraded_gpu(&SystemModel::paper_server())));

    // Serve until the monitor trips; min_samples floors this at 6
    // batches, the cap catches a dead feedback loop.
    let deadline = Instant::now() + Duration::from_secs(120);
    while metrics.snapshot().plan_swaps == 0 {
        assert!(Instant::now() < deadline, "feedback loop never fired");
        run_one(&server, &mut seed);
    }
    // Post-swap epoch: responses now carry epoch 2 and better latency.
    for _ in 0..6 {
        assert_eq!(run_one(&server, &mut seed).epoch, 2);
    }

    let snap = metrics.snapshot();
    assert_eq!(snap.plan_swaps, 1, "exactly one corrective swap");
    let stale = metrics.epoch_service_stats(1).expect("drifted epoch").p50();
    let fresh = metrics
        .epoch_service_stats(2)
        .expect("post-swap epoch")
        .p50();
    assert!(
        fresh < stale,
        "hot-swap must lower measured P50: stale {stale:.1} us, post-swap {fresh:.1} us"
    );
    // Bit-identity survives the swap: plans change placement, not bytes.
    let feeds = spec.request_feeds(seed);
    let resp = server
        .submit(model, feeds.clone(), None)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(resp.outputs, server.reference_run(model, &feeds).unwrap());
}

/// Satellite (f)'s conformance hook: a witnessed request through the
/// serving engines passes the D3xx runtime checks.
#[test]
fn witnessed_request_passes_runtime_conformance() {
    let server = server_for("mlp", ServeConfig::default());
    let report = server.witness_check("mlp", 42).unwrap();
    assert!(report.is_clean(), "witness conformance errors:\n{report}");
}

/// Tentpole: one trace id flows admission → batch → subgraph → kernel.
/// The flight ring keeps every completed request's span tree; the batch
/// lead's tree must contain the full parent-linked causal chain under
/// its own trace id.
#[test]
fn trace_context_links_admission_to_kernel() {
    let server = server_for(
        "mlp",
        ServeConfig {
            max_batch: 4,
            linger: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    );
    let spec = ModelSpec::serving_zoo("mlp").unwrap();
    let handles: Vec<_> = (0..4)
        .map(|i| server.submit("mlp", spec.request_feeds(i), None).unwrap())
        .collect();
    let mut trace_ids = Vec::new();
    for h in handles {
        let resp = h.wait().unwrap();
        assert_ne!(resp.trace_id, 0, "every response carries a trace id");
        trace_ids.push(resp.trace_id);
    }
    trace_ids.sort_unstable();
    trace_ids.dedup();
    assert_eq!(trace_ids.len(), 4, "trace ids are per-request unique");

    let traces = server.flight("mlp").unwrap().traces();
    assert_eq!(traces.len(), 4, "flight ring holds all completed requests");
    // At least one trace (the batch lead's) carries the unbroken chain
    // request -> batch -> run -> subgraph -> kernel under its trace id.
    let full_chain = traces.iter().any(|t| {
        let own = |k: SpanKind| {
            t.spans
                .iter()
                .filter(move |s| s.kind == k && s.trace_id == t.trace_id)
        };
        own(SpanKind::ServeRequest).any(|req| {
            own(SpanKind::ServeBatch)
                .filter(|b| b.parent_id == req.span_id)
                .any(|b| {
                    own(SpanKind::ExecRun)
                        .filter(|r| r.parent_id == b.span_id)
                        .any(|r| {
                            own(SpanKind::ExecSubgraph)
                                .filter(|sg| sg.parent_id == r.span_id)
                                .any(|sg| {
                                    own(SpanKind::ExecKernel).any(|kn| kn.parent_id == sg.span_id)
                                })
                        })
                })
        })
    });
    assert!(
        full_chain,
        "no trace carries the admission->batch->subgraph->kernel chain"
    );
    // Every member decomposes: segments sum to the measured sojourn.
    for t in &traces {
        let sum = t.attribution.total_us();
        assert!(
            (sum - t.sojourn_us).abs() <= t.sojourn_us.max(1.0) * 0.05,
            "attribution sums to {sum:.1} us but sojourn is {:.1} us",
            t.sojourn_us
        );
    }
}

/// Satellite (d): a synthetic SLO breach produces exactly one flight
/// dump, the dump contains the breaching trace, and the latch holds
/// against further anomalies.
#[test]
fn slo_breach_writes_exactly_one_dump_with_breaching_trace() {
    let dir = std::env::temp_dir().join(format!(
        "duet-serve-slo-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = server_for(
        "mlp",
        ServeConfig {
            max_batch: 1,
            linger: Duration::ZERO,
            // Sub-microsecond SLO: the first completed request breaches
            // and a 1-of-1 window burns immediately.
            slo: Some(SloConfig {
                limit_us: 0.001,
                window: 1,
                burn_threshold: 1,
            }),
            flight_dir: Some(dir.clone()),
            ..ServeConfig::default()
        },
    );
    let spec = ModelSpec::serving_zoo("mlp").unwrap();
    let first = server
        .submit("mlp", spec.request_feeds(7), None)
        .unwrap()
        .wait()
        .unwrap();
    // The dump (including its witnessed replay run) happens on the
    // worker thread; give it a bounded moment to land.
    let flight = server.flight("mlp").unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    let dump_path = loop {
        if let Some(p) = flight.last_dump() {
            break p;
        }
        assert!(Instant::now() < deadline, "SLO burn never produced a dump");
        std::thread::sleep(Duration::from_millis(10));
    };

    // Further breaches are latched: still exactly one dump directory.
    for i in 0..4 {
        server
            .submit("mlp", spec.request_feeds(100 + i), None)
            .unwrap()
            .wait()
            .unwrap();
    }
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
    assert_eq!(entries.len(), 1, "exactly one dump directory");
    assert_eq!(entries[0].path(), dump_path);

    let dump = FlightDump::load(&dump_path).expect("dump loads");
    assert_eq!(dump.rule(), Some("slo_burn"));
    assert_eq!(dump.model(), Some("mlp"));
    assert_eq!(dump.trigger_trace_id(), first.trace_id);
    assert!(
        dump.traces.iter().any(|t| t.trace_id == first.trace_id),
        "dump must contain the breaching trace"
    );
    assert!(
        dump.witness.is_some(),
        "dump carries a witnessed replay for duet-lint trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
