//! Causal trace context for per-request tracing.
//!
//! A [`TraceContext`] is minted at serving admission ([`TraceContext::root`])
//! and propagated through the batcher, plan cache, and executors: each
//! stage derives a [`child`](TraceContext::child) carrying the same
//! trace id but a fresh span id, and records its span with
//! `(trace_id, span_id, parent_id)` linkage so a reader can rebuild the
//! span tree for one request out of the shared ring.
//!
//! Ids are minted from process-wide atomic counters starting at 1 — id
//! 0 is reserved to mean *untraced* everywhere (span slots, exemplars),
//! which keeps the zero-initialised ring unambiguous.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Mint a fresh process-unique trace id (never 0).
#[inline]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Mint a fresh process-unique span id (never 0).
#[inline]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// A position in a causal trace: which request (`trace_id`) and which
/// span within it (`span_id`). Copy it across threads freely; derive
/// children with [`child`](TraceContext::child).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub span_id: u64,
}

impl TraceContext {
    /// Start a new trace (one per admitted request).
    pub fn root() -> TraceContext {
        TraceContext {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
        }
    }

    /// A child context: same trace, fresh span id. The caller records
    /// the child span with `parent_id = self.span_id`.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_span_id(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        let c = a.child();
        assert_eq!(c.trace_id, a.trace_id);
        assert_ne!(c.span_id, a.span_id);
    }
}
