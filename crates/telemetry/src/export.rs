//! Minimal HTTP exposition endpoint (std-only, no HTTP library).
//!
//! [`serve_metrics`] binds a `TcpListener` and answers `GET /metrics`
//! with the Prometheus text rendering of the global registry. One
//! request per connection, `Connection: close`, no keep-alive, no TLS —
//! the consumer is a scraper or `curl`, not a browser. The accept loop
//! runs on a detached thread so the serving process never waits on it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Spawn the metrics endpoint on `addr` (e.g. `127.0.0.1:9464`; port 0
/// picks a free port). Returns the actually-bound address.
pub fn serve_metrics(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("duet-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // A slow or broken scraper must not wedge the endpoint.
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                let _ = handle(stream);
            }
        })?;
    Ok(bound)
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", crate::registry::prometheus_text())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_over_http() {
        let addr = serve_metrics("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("# TYPE duet_sched_moves_accepted_total counter"));
        assert!(response.contains("duet_serve_queue_depth"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }
}
