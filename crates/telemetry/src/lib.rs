//! # duet-telemetry
//!
//! Unified, low-overhead instrumentation for every DUET pipeline stage:
//! compile → profile → schedule → execute → serve.
//!
//! Design contract (what lets this stay on by default):
//!
//! * **Zero heap allocation on the hot path.** Counters and gauges are
//!   single atomics; histograms are fixed arrays of atomics (log2
//!   buckets); spans go into a bounded ring buffer of pre-sized slots.
//!   The `duet-alloc-gate` steady-state budget holds with telemetry
//!   *enabled* — that is a CI gate, not an aspiration.
//! * **Lock-free writers.** Metric updates are relaxed atomic RMWs; span
//!   slots use a per-slot seqlock so readers detect (and skip) torn
//!   writes instead of writers ever blocking.
//! * **Static registration.** Every metric is a `static` in
//!   [`registry`]; the Prometheus exposition walks a fixed list, so a
//!   scrape never observes a half-registered family.
//! * **No dependencies.** This crate is a leaf: every other DUET crate
//!   may depend on it without cycles.
//!
//! Two export paths:
//!
//! * [`prometheus_text`] renders the whole registry in Prometheus text
//!   exposition format (`duet-serve --metrics-addr` serves it over HTTP
//!   via [`export::serve_metrics`]; `--metrics-out` dumps it to a file).
//! * [`spans`] drains the span ring for the merged Perfetto timeline
//!   (`duet trace <model> <file> --full`), interleaving offline
//!   compile/profile/schedule spans with the runtime witness lanes.
//!
//! Telemetry defaults to **on**; `DUET_TELEMETRY=0` in the environment
//! or [`set_enabled`]`(false)` turns span recording off (metric counters
//! are so cheap they are unconditional). The `duet-telemetry-overhead`
//! CI gate proves the enabled-vs-disabled end-to-end gap stays < 3%.

pub mod context;
pub mod export;
pub mod metric;
pub mod registry;
pub mod span;
pub mod stats;

pub use context::{next_span_id, next_trace_id, TraceContext};
pub use metric::{Counter, Gauge, Histogram};
pub use registry::{prometheus_text, render_prometheus};
pub use span::{
    clock_us, record_instant, record_span, record_span_traced, reset_spans, spans, Span, SpanKind,
    SpanRing,
};
pub use stats::{percentile_sorted, Reservoir};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = uninitialised (consult the environment), 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span recording is enabled. First call consults
/// `DUET_TELEMETRY` (`0`, `off`, `false` disable); [`set_enabled`]
/// overrides. Metric counters ignore this flag — they are single
/// relaxed RMWs and not worth a branch.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = !matches!(
                std::env::var("DUET_TELEMETRY").as_deref(),
                Ok("0") | Ok("off") | Ok("false")
            );
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force span recording on or off for this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}
