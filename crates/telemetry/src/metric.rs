//! Metric primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All three are `const`-constructible so they can live in statics, and
//! all updates are single relaxed atomic RMWs — no locks, no heap, no
//! fences on the hot path. The same types also work as instance fields
//! (per-model serving metrics own private histograms).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &'static str)>,
    v: AtomicU64,
}

impl Counter {
    /// Unlabelled counter.
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Counter {
            name,
            help,
            label: None,
            v: AtomicU64::new(0),
        }
    }

    /// Counter carrying one constant label (`name{key="value"}`); several
    /// statics sharing a `name` form one Prometheus family.
    pub const fn with_label(
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Self {
        Counter {
            name,
            help,
            label: Some((key, value)),
            v: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulate a duration expressed in (fractional) microseconds.
    #[inline]
    pub fn add_us(&self, us: f64) {
        self.add(us.max(0.0) as u64);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }

    pub fn label(&self) -> Option<(&'static str, &'static str)> {
        self.label
    }
}

/// Gauge: a value that can go up and down.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    v: AtomicI64,
}

impl Gauge {
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Gauge {
            name,
            help,
            v: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.v.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is currently lower (high-water mark
    /// across concurrent writers, e.g. the max epoch over all models).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.v.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// Number of log2 buckets. Bucket `i` holds values whose bit length is
/// `i` (so 0, then [2^(i-1), 2^i - 1]); the last bucket absorbs the
/// tail. Powers of two land in distinct buckets, which makes the bucket
/// exactly reconstructible for power-of-two-valued series (batch sizes).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-bucket (log2) histogram. Bounded memory forever, O(1) relaxed
/// updates, and a cumulative Prometheus rendering. Percentile *estimates*
/// come from bucket upper bounds; exact percentiles for reporting use a
/// bounded [`crate::Reservoir`] next to it.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    label: Option<(&'static str, &'static str)>,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Largest value ever passed to `observe_exemplar` — a tail
    /// exemplar.
    ex_value: AtomicU64,
    /// Trace id attached to that value; 0 = no exemplar yet.
    ex_trace: AtomicU64,
}

/// Bucket index of a value: its bit length, clamped to the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the last bucket is unbounded).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub const fn new(name: &'static str, help: &'static str) -> Self {
        Histogram {
            name,
            help,
            label: None,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            ex_value: AtomicU64::new(0),
            ex_trace: AtomicU64::new(0),
        }
    }

    /// Histogram carrying one constant label (`name{key="value"}`);
    /// several statics sharing a `name` form one Prometheus family.
    pub const fn with_label(
        name: &'static str,
        help: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Self {
        Histogram {
            name,
            help,
            label: Some((key, value)),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            ex_value: AtomicU64::new(0),
            ex_trace: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record one observation and offer it as the histogram's tail
    /// exemplar. The largest value ever offered wins (so the exemplar
    /// names a trace inhabiting the top bucket — the P99+ tail); a 0
    /// trace id records the value without exemplar metadata. The
    /// value/trace pair is updated best-effort under races — an
    /// exemplar is a debugging pointer, not an exact statistic.
    #[inline]
    pub fn observe_exemplar(&self, v: u64, trace_id: u64) {
        self.observe(v);
        self.exemplar_hint(v, trace_id);
    }

    /// Offer a tail exemplar *without* recording an observation — for
    /// call sites where the value was already observed through another
    /// path (e.g. a batched recording API) and only the trace linkage
    /// is being added.
    #[inline]
    pub fn exemplar_hint(&self, v: u64, trace_id: u64) {
        if trace_id == 0 {
            return;
        }
        let mut cur = self.ex_value.load(Ordering::Relaxed);
        while v >= cur {
            match self
                .ex_value
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.ex_trace.store(trace_id, Ordering::Relaxed);
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }

    /// The tail exemplar as `(value, trace_id)`, if any was recorded.
    pub fn exemplar(&self) -> Option<(u64, u64)> {
        let trace = self.ex_trace.load(Ordering::Relaxed);
        (trace != 0).then(|| (self.ex_value.load(Ordering::Relaxed), trace))
    }

    /// Record a (fractional) microsecond value, truncated to integer µs.
    #[inline]
    pub fn observe_us(&self, us: f64) {
        self.observe(us.max(0.0) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(bucket index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    /// For power-of-two-valued series (batch sizes): reconstruct the
    /// exact `(value, count)` pairs. Bucket `i ≥ 1` maps back to value
    /// `2^(i-1)`; bucket 0 maps to 0.
    pub fn pow2_values(&self) -> Vec<(u64, u64)> {
        self.nonzero_buckets()
            .into_iter()
            .map(|(i, n)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
            .collect()
    }

    /// Upper-bound estimate of quantile `q` in `[0, 1]` from the bucket
    /// boundaries; `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }

    pub fn label(&self) -> Option<(&'static str, &'static str)> {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn pow2_reconstruction_is_exact() {
        static H: Histogram = Histogram::new("h", "test");
        H.observe(4);
        H.observe(2);
        H.observe(4);
        H.observe(1);
        assert_eq!(H.pow2_values(), vec![(1, 1), (2, 1), (4, 2)]);
        assert_eq!(H.count(), 4);
        assert_eq!(H.sum(), 11);
    }

    #[test]
    fn quantile_upper_bounds_bracket() {
        let h = Histogram::new("q", "test");
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        // P50 of {1,2,3,100,1000}: nearest rank 3 → value 3 → bucket ub 3.
        assert_eq!(h.quantile_upper_bound(0.5), Some(3));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1023));
    }
}
