//! The static metric registry and Prometheus text exposition.
//!
//! Every metric in the DUET pipeline is a `static` defined here, grouped
//! by stage, and listed in the registry slices below. Instrumented
//! crates reference the statics directly (e.g.
//! `duet_telemetry::registry::SCHED_MOVES_ACCEPTED.inc()`); the
//! exposition walks the fixed lists, so `/metrics` always shows every
//! family — zero-valued families included, which is what lets a scrape
//! assert presence before traffic arrives.
//!
//! Naming scheme: `duet_<stage>_<what>[_total|_us]`, stages `compile`,
//! `profile`, `sched`, `exec`, `tape`, `arena`, `serve`. Counters of
//! accumulated time end in `_us_total`; histograms of microsecond
//! values end in `_us`.

use crate::metric::{bucket_upper_bound, Counter, Gauge, Histogram};

// ---- compile ----

pub static COMPILE_RUNS: Counter = Counter::new(
    "duet_compile_runs_total",
    "Compiler::optimize pipeline invocations",
);
pub static COMPILE_PASS_RUNS_FOLD: Counter = Counter::with_label(
    "duet_compile_pass_runs_total",
    "Optimization pass executions",
    "pass",
    "fold_constants",
);
pub static COMPILE_PASS_RUNS_CSE: Counter = Counter::with_label(
    "duet_compile_pass_runs_total",
    "Optimization pass executions",
    "pass",
    "cse",
);
pub static COMPILE_PASS_RUNS_DCE: Counter = Counter::with_label(
    "duet_compile_pass_runs_total",
    "Optimization pass executions",
    "pass",
    "dce",
);
pub static COMPILE_PASS_US_FOLD: Counter = Counter::with_label(
    "duet_compile_pass_wall_us_total",
    "Accumulated wall time per optimization pass, microseconds",
    "pass",
    "fold_constants",
);
pub static COMPILE_PASS_US_CSE: Counter = Counter::with_label(
    "duet_compile_pass_wall_us_total",
    "Accumulated wall time per optimization pass, microseconds",
    "pass",
    "cse",
);
pub static COMPILE_PASS_US_DCE: Counter = Counter::with_label(
    "duet_compile_pass_wall_us_total",
    "Accumulated wall time per optimization pass, microseconds",
    "pass",
    "dce",
);
pub static COMPILE_PASS_DELTA_FOLD: Counter = Counter::with_label(
    "duet_compile_pass_node_delta_total",
    "Nodes folded/merged/removed per pass",
    "pass",
    "fold_constants",
);
pub static COMPILE_PASS_DELTA_CSE: Counter = Counter::with_label(
    "duet_compile_pass_node_delta_total",
    "Nodes folded/merged/removed per pass",
    "pass",
    "cse",
);
pub static COMPILE_PASS_DELTA_DCE: Counter = Counter::with_label(
    "duet_compile_pass_node_delta_total",
    "Nodes folded/merged/removed per pass",
    "pass",
    "dce",
);

// ---- profile ----

pub static PROFILE_SUBGRAPHS: Counter = Counter::new(
    "duet_profile_subgraphs_total",
    "Compiled subgraphs micro-benchmarked (both devices each)",
);
pub static PROFILE_SAMPLES_CPU: Counter = Counter::with_label(
    "duet_profile_samples_total",
    "Profiling samples recorded after warm-up",
    "device",
    "cpu",
);
pub static PROFILE_SAMPLES_GPU: Counter = Counter::with_label(
    "duet_profile_samples_total",
    "Profiling samples recorded after warm-up",
    "device",
    "gpu",
);

// ---- schedule (Algorithm 1 correction search) ----

pub static SCHED_CORRECTIONS: Counter = Counter::new(
    "duet_sched_corrections_total",
    "Correction searches run (offline builds + drift re-corrections)",
);
pub static SCHED_ROUNDS: Counter = Counter::new(
    "duet_sched_correction_rounds_total",
    "Correction rounds across all searches",
);
pub static SCHED_MOVES_EVALUATED: Counter = Counter::new(
    "duet_sched_moves_evaluated_total",
    "Candidate moves/swaps priced against measured latency",
);
pub static SCHED_MOVES_ACCEPTED: Counter = Counter::new(
    "duet_sched_moves_accepted_total",
    "Candidate moves that improved latency and were applied",
);
pub static SCHED_MOVES_REJECTED: Counter = Counter::new(
    "duet_sched_moves_rejected_total",
    "Candidate moves evaluated but not applied",
);
pub static SCHED_ACCEPTED_GAIN_US: Histogram = Histogram::new(
    "duet_sched_accepted_gain_us",
    "Predicted latency improvement per accepted move, microseconds",
);
pub static SCHED_PREDICTED_LATENCY_US: Gauge = Gauge::new(
    "duet_sched_predicted_latency_us",
    "Predicted end-to-end latency after the most recent correction, microseconds",
);

// ---- execute ----

pub static EXEC_RUNS: Counter =
    Counter::new("duet_exec_runs_total", "Heterogeneous executor inferences");
pub static EXEC_SUBGRAPHS_CPU: Counter = Counter::with_label(
    "duet_exec_subgraphs_total",
    "Subgraph dispatches per device",
    "device",
    "cpu",
);
pub static EXEC_SUBGRAPHS_GPU: Counter = Counter::with_label(
    "duet_exec_subgraphs_total",
    "Subgraph dispatches per device",
    "device",
    "gpu",
);
pub static TAPE_RUNS: Counter = Counter::new(
    "duet_tape_runs_total",
    "Instruction-tape executions (memory-planned path)",
);
pub static TAPE_INSTRS: Counter =
    Counter::new("duet_tape_instructions_total", "Tape instructions executed");
pub static ARENA_CHECKOUTS_CREATED: Counter = Counter::with_label(
    "duet_arena_checkouts_total",
    "Tape-arena pool checkouts",
    "result",
    "created",
);
pub static ARENA_CHECKOUTS_REUSED: Counter = Counter::with_label(
    "duet_arena_checkouts_total",
    "Tape-arena pool checkouts",
    "result",
    "reused",
);

// ---- serve ----

pub static SERVE_SUBMITTED: Counter = Counter::new(
    "duet_serve_submitted_total",
    "Requests submitted across all models",
);
pub static SERVE_ADMITTED: Counter = Counter::new(
    "duet_serve_admitted_total",
    "Requests accepted by admission control",
);
pub static SERVE_COMPLETED: Counter = Counter::new(
    "duet_serve_completed_total",
    "Requests answered successfully",
);
pub static SERVE_SHED_QUEUE_FULL: Counter = Counter::with_label(
    "duet_serve_shed_total",
    "Requests shed",
    "reason",
    "queue_full",
);
pub static SERVE_SHED_EXPIRED: Counter = Counter::with_label(
    "duet_serve_shed_total",
    "Requests shed",
    "reason",
    "expired",
);
pub static SERVE_EXEC_ERRORS: Counter = Counter::new(
    "duet_serve_exec_errors_total",
    "Batches failed in execution",
);
pub static SERVE_BATCHES: Counter = Counter::new(
    "duet_serve_batches_total",
    "Batches executed by the dynamic batcher",
);
pub static SERVE_BATCH_SIZE: Histogram = Histogram::new(
    "duet_serve_batch_size",
    "Executed batch sizes (power-of-two chunks)",
);
pub static SERVE_SOJOURN_US: Histogram = Histogram::new(
    "duet_serve_sojourn_us",
    "Wall-clock sojourn per request (queueing + linger + execution), microseconds",
);
pub static SERVE_VIRTUAL_SERVICE_US: Histogram = Histogram::new(
    "duet_serve_virtual_service_us",
    "Per-request virtual service share on the modeled hardware, microseconds",
);
pub static SERVE_PLAN_SWAPS: Counter =
    Counter::new("duet_serve_plan_swaps_total", "Drift-driven plan hot-swaps");
pub static SERVE_PLAN_SWAP_REJECTED: Counter = Counter::new(
    "duet_serve_plan_swap_rejected_total",
    "Re-corrected plans refused by the D5xx model-check gate",
);
pub static SERVE_QUEUE_DEPTH: Gauge = Gauge::new(
    "duet_serve_queue_depth",
    "Requests currently queued across all models",
);
pub static SERVE_EPOCH: Gauge = Gauge::new(
    "duet_serve_epoch",
    "Highest metrics epoch across models (bumped on drift injection and hot-swap)",
);

// ---- insight (per-request tracing, attribution, flight recorder) ----

pub static SERVE_SLO_BREACHES: Counter = Counter::new(
    "duet_serve_slo_breaches_total",
    "Requests whose sojourn exceeded the configured SLO budget",
);
pub static SERVE_SEGMENT_QUEUE: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "queue",
);
pub static SERVE_SEGMENT_LINGER: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "linger",
);
pub static SERVE_SEGMENT_COMPUTE_CPU: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "compute_cpu",
);
pub static SERVE_SEGMENT_COMPUTE_GPU: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "compute_gpu",
);
pub static SERVE_SEGMENT_TRANSFER: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "transfer",
);
pub static SERVE_SEGMENT_OVERHEAD: Histogram = Histogram::with_label(
    "duet_serve_segment_us",
    "Per-request latency attribution per segment, microseconds",
    "segment",
    "overhead",
);
pub static INSIGHT_TRACES: Counter = Counter::new(
    "duet_insight_traces_total",
    "Completed request traces pushed into the flight-recorder ring",
);
pub static INSIGHT_TORN_RETRIED: Counter = Counter::with_label(
    "duet_insight_torn_reads_total",
    "Span-ring snapshot reads that caught a slot mid-write",
    "result",
    "retried",
);
pub static INSIGHT_TORN_SKIPPED: Counter = Counter::with_label(
    "duet_insight_torn_reads_total",
    "Span-ring snapshot reads that caught a slot mid-write",
    "result",
    "skipped",
);
pub static INSIGHT_DUMPS_SLO_BURN: Counter = Counter::with_label(
    "duet_insight_dumps_total",
    "Flight-recorder dumps written per anomaly rule",
    "rule",
    "slo_burn",
);
pub static INSIGHT_DUMPS_SHED: Counter = Counter::with_label(
    "duet_insight_dumps_total",
    "Flight-recorder dumps written per anomaly rule",
    "rule",
    "shed",
);
pub static INSIGHT_DUMPS_DRIFT_SWAP: Counter = Counter::with_label(
    "duet_insight_dumps_total",
    "Flight-recorder dumps written per anomaly rule",
    "rule",
    "drift_swap",
);
pub static INSIGHT_DUMPS_SWAP_REFUSED: Counter = Counter::with_label(
    "duet_insight_dumps_total",
    "Flight-recorder dumps written per anomaly rule",
    "rule",
    "swap_refused",
);
pub static INSIGHT_DUMPS_SUPPRESSED: Counter = Counter::new(
    "duet_insight_dumps_suppressed_total",
    "Anomaly triggers suppressed because the once-per-run dump latch had fired",
);

// ---- tune (simulator-oracle schedule search) ----

pub static TUNE_RUNS: Counter = Counter::new(
    "duet_tune_runs_total",
    "Autotuning searches run (one per model/batch tuned)",
);
pub static TUNE_CANDIDATES: Counter = Counter::new(
    "duet_tune_candidates_total",
    "Placement candidates priced by the simulator oracle",
);
pub static TUNE_PROMOTIONS_ACCEPTED: Counter = Counter::with_label(
    "duet_tune_promotions_total",
    "Winning plans through the D5xx/D2xx promotion gate",
    "result",
    "accepted",
);
pub static TUNE_PROMOTIONS_REJECTED: Counter = Counter::with_label(
    "duet_tune_promotions_total",
    "Winning plans through the D5xx/D2xx promotion gate",
    "result",
    "rejected",
);
pub static TUNE_ORACLE_WALL_US: Histogram = Histogram::new(
    "duet_tune_oracle_wall_us",
    "Oracle wall time per candidate batch, microseconds",
);
pub static TUNE_SEARCH_WALL_US: Histogram = Histogram::new(
    "duet_tune_search_wall_us",
    "End-to-end wall time per strategy search, microseconds",
);

// ---- analysis ----

pub static ANALYSIS_CHECKS_GRAPH: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "graph",
);
pub static ANALYSIS_CHECKS_PASS: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "pass",
);
pub static ANALYSIS_CHECKS_PLAN: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "plan",
);
pub static ANALYSIS_CHECKS_WITNESS: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "witness",
);
pub static ANALYSIS_CHECKS_MEMORY: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "memory",
);
pub static ANALYSIS_CHECKS_MODEL: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "model",
);
pub static ANALYSIS_DIAGNOSTICS_GRAPH: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "graph",
);
pub static ANALYSIS_DIAGNOSTICS_PASS: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "pass",
);
pub static ANALYSIS_DIAGNOSTICS_PLAN: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "plan",
);
pub static ANALYSIS_DIAGNOSTICS_WITNESS: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "witness",
);
pub static ANALYSIS_DIAGNOSTICS_MEMORY: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "memory",
);
pub static ANALYSIS_DIAGNOSTICS_MODEL: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "model",
);
pub static ANALYSIS_CHECKS_DATAFLOW: Counter = Counter::with_label(
    "duet_analysis_checks_total",
    "Analyzer invocations",
    "family",
    "dataflow",
);
pub static ANALYSIS_DIAGNOSTICS_DATAFLOW: Counter = Counter::with_label(
    "duet_analysis_diagnostics_total",
    "Diagnostics emitted per analyzer family",
    "family",
    "dataflow",
);
pub static ANALYSIS_MODEL_CHECK_STATES: Histogram = Histogram::new(
    "duet_analysis_model_check_states",
    "States expanded per plan model check",
);
pub static ANALYSIS_MODEL_CHECK_WALL_US: Histogram = Histogram::new(
    "duet_analysis_model_check_wall_us",
    "Model-checker wall time per plan, microseconds",
);
pub static ANALYSIS_DATAFLOW_WALL_US: Histogram = Histogram::new(
    "duet_analysis_dataflow_wall_us",
    "Dataflow (abstract interpretation) wall time per graph, microseconds",
);

/// Every registered counter, in exposition order.
pub fn counters() -> &'static [&'static Counter] {
    static COUNTERS: &[&Counter] = &[
        &COMPILE_RUNS,
        &COMPILE_PASS_RUNS_FOLD,
        &COMPILE_PASS_RUNS_CSE,
        &COMPILE_PASS_RUNS_DCE,
        &COMPILE_PASS_US_FOLD,
        &COMPILE_PASS_US_CSE,
        &COMPILE_PASS_US_DCE,
        &COMPILE_PASS_DELTA_FOLD,
        &COMPILE_PASS_DELTA_CSE,
        &COMPILE_PASS_DELTA_DCE,
        &PROFILE_SUBGRAPHS,
        &PROFILE_SAMPLES_CPU,
        &PROFILE_SAMPLES_GPU,
        &SCHED_CORRECTIONS,
        &SCHED_ROUNDS,
        &SCHED_MOVES_EVALUATED,
        &SCHED_MOVES_ACCEPTED,
        &SCHED_MOVES_REJECTED,
        &EXEC_RUNS,
        &EXEC_SUBGRAPHS_CPU,
        &EXEC_SUBGRAPHS_GPU,
        &TAPE_RUNS,
        &TAPE_INSTRS,
        &ARENA_CHECKOUTS_CREATED,
        &ARENA_CHECKOUTS_REUSED,
        &SERVE_SUBMITTED,
        &SERVE_ADMITTED,
        &SERVE_COMPLETED,
        &SERVE_SHED_QUEUE_FULL,
        &SERVE_SHED_EXPIRED,
        &SERVE_EXEC_ERRORS,
        &SERVE_BATCHES,
        &SERVE_PLAN_SWAPS,
        &SERVE_PLAN_SWAP_REJECTED,
        &SERVE_SLO_BREACHES,
        &INSIGHT_TRACES,
        &INSIGHT_TORN_RETRIED,
        &INSIGHT_TORN_SKIPPED,
        &INSIGHT_DUMPS_SLO_BURN,
        &INSIGHT_DUMPS_SHED,
        &INSIGHT_DUMPS_DRIFT_SWAP,
        &INSIGHT_DUMPS_SWAP_REFUSED,
        &INSIGHT_DUMPS_SUPPRESSED,
        &TUNE_RUNS,
        &TUNE_CANDIDATES,
        &TUNE_PROMOTIONS_ACCEPTED,
        &TUNE_PROMOTIONS_REJECTED,
        &ANALYSIS_CHECKS_GRAPH,
        &ANALYSIS_CHECKS_PASS,
        &ANALYSIS_CHECKS_PLAN,
        &ANALYSIS_CHECKS_WITNESS,
        &ANALYSIS_CHECKS_MEMORY,
        &ANALYSIS_CHECKS_MODEL,
        &ANALYSIS_DIAGNOSTICS_GRAPH,
        &ANALYSIS_DIAGNOSTICS_PASS,
        &ANALYSIS_DIAGNOSTICS_PLAN,
        &ANALYSIS_DIAGNOSTICS_WITNESS,
        &ANALYSIS_DIAGNOSTICS_MEMORY,
        &ANALYSIS_DIAGNOSTICS_MODEL,
        &ANALYSIS_CHECKS_DATAFLOW,
        &ANALYSIS_DIAGNOSTICS_DATAFLOW,
    ];
    COUNTERS
}

/// Every registered gauge.
pub fn gauges() -> &'static [&'static Gauge] {
    static GAUGES: &[&Gauge] = &[
        &SCHED_PREDICTED_LATENCY_US,
        &SERVE_QUEUE_DEPTH,
        &SERVE_EPOCH,
    ];
    GAUGES
}

/// Every registered histogram.
pub fn histograms() -> &'static [&'static Histogram] {
    static HISTOGRAMS: &[&Histogram] = &[
        &SCHED_ACCEPTED_GAIN_US,
        &SERVE_BATCH_SIZE,
        &SERVE_SOJOURN_US,
        &SERVE_VIRTUAL_SERVICE_US,
        &SERVE_SEGMENT_QUEUE,
        &SERVE_SEGMENT_LINGER,
        &SERVE_SEGMENT_COMPUTE_CPU,
        &SERVE_SEGMENT_COMPUTE_GPU,
        &SERVE_SEGMENT_TRANSFER,
        &SERVE_SEGMENT_OVERHEAD,
        &TUNE_ORACLE_WALL_US,
        &TUNE_SEARCH_WALL_US,
        &ANALYSIS_MODEL_CHECK_STATES,
        &ANALYSIS_MODEL_CHECK_WALL_US,
        &ANALYSIS_DATAFLOW_WALL_US,
    ];
    HISTOGRAMS
}

/// Render the full global registry in Prometheus text exposition format.
pub fn prometheus_text() -> String {
    render_prometheus(counters(), gauges(), histograms())
}

/// Render arbitrary metric sets in Prometheus text exposition format
/// (version 0.0.4). Consecutive counters sharing a family name emit one
/// `# HELP` / `# TYPE` header.
pub fn render_prometheus(
    counters: &[&Counter],
    gauges: &[&Gauge],
    histograms: &[&Histogram],
) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for c in counters {
        if c.name() != last_family {
            out.push_str(&format!("# HELP {} {}\n", c.name(), c.help()));
            out.push_str(&format!("# TYPE {} counter\n", c.name()));
            last_family = c.name();
        }
        match c.label() {
            Some((k, v)) => out.push_str(&format!("{}{{{}=\"{}\"}} {}\n", c.name(), k, v, c.get())),
            None => out.push_str(&format!("{} {}\n", c.name(), c.get())),
        }
    }
    for g in gauges {
        out.push_str(&format!("# HELP {} {}\n", g.name(), g.help()));
        out.push_str(&format!("# TYPE {} gauge\n", g.name()));
        out.push_str(&format!("{} {}\n", g.name(), g.get()));
    }
    let mut last_family = "";
    for h in histograms {
        if h.name() != last_family {
            out.push_str(&format!("# HELP {} {}\n", h.name(), h.help()));
            out.push_str(&format!("# TYPE {} histogram\n", h.name()));
            last_family = h.name();
        }
        // A constant label (e.g. segment="queue") prefixes every label
        // set; `_sum`/`_count` carry it alone.
        let (bucket_prefix, plain) = match h.label() {
            Some((k, v)) => (format!("{k}=\"{v}\","), format!("{{{k}=\"{v}\"}}")),
            None => (String::new(), String::new()),
        };
        let mut cumulative = 0u64;
        for (i, n) in h.nonzero_buckets() {
            cumulative += n;
            let le = bucket_upper_bound(i);
            if le == u64::MAX {
                continue; // folded into +Inf below
            }
            out.push_str(&format!(
                "{}_bucket{{{}le=\"{}\"}} {}\n",
                h.name(),
                bucket_prefix,
                le,
                cumulative
            ));
        }
        // Tail exemplar (OpenMetrics syntax) rides on the +Inf bucket,
        // only when one was recorded — zero-state renderings are
        // byte-identical to the pre-exemplar format.
        let exemplar = match h.exemplar() {
            Some((v, trace)) => format!(" # {{trace_id=\"{trace:x}\"}} {v}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{}_bucket{{{}le=\"+Inf\"}} {}{}\n",
            h.name(),
            bucket_prefix,
            h.count(),
            exemplar
        ));
        out.push_str(&format!("{}_sum{} {}\n", h.name(), plain, h.sum()));
        out.push_str(&format!("{}_count{} {}\n", h.name(), plain, h.count()));
    }
    out
}
