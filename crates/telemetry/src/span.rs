//! Bounded span ring buffer.
//!
//! Spans record *what happened when* for the merged Perfetto timeline:
//! compiler passes, per-subgraph profiling, every candidate move of the
//! Algorithm 1 correction search, executor subgraph dispatches, serving
//! batches. The ring is a fixed array of slots; each write claims a slot
//! by a global sequence counter and fills it under a per-slot seqlock,
//! so writers never block and never allocate, and a reader skips any
//! slot it catches mid-write. When the ring wraps, the oldest spans are
//! overwritten — observability is a window, not an archive.
//!
//! **Time domains.** Offline-stage spans (compile, profile, schedule,
//! serve) carry wall-clock microseconds from [`clock_us`] (one process-
//! wide epoch). Executor spans carry *virtual* microseconds from the
//! device models — the same clock the execution witness uses, so the
//! two agree in the merged trace and span ordering can be checked
//! against witness happens-before order.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What a span describes. A closed enum keeps span names `'static` and
/// slot writes purely numeric (no pointers in the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole `Compiler::optimize` pipeline. detail = nodes before,
    /// arg0 = nodes after.
    CompileOptimize = 0,
    /// Constant folding pass. detail = constants folded.
    PassFoldConstants = 1,
    /// Common-subexpression elimination. detail = merged.
    PassCse = 2,
    /// Dead-code elimination. detail = removed.
    PassDce = 3,
    /// One subgraph profiled on both devices. detail = subgraph index,
    /// arg0 = CPU mean µs, arg1 = GPU mean µs.
    ProfileSubgraph = 4,
    /// One full correction search. detail = rounds, arg0 = initial
    /// predicted latency µs, arg1 = final predicted latency µs.
    SchedCorrection = 5,
    /// One correction round. detail = round index, arg0 = incumbent
    /// latency µs.
    SchedRound = 6,
    /// Candidate move/swap that improved latency and was applied.
    /// detail = encoded move (i*1024+j+1, or i+1 for single moves),
    /// arg0 = predicted latency µs, arg1 = margin vs the epsilon-scaled
    /// incumbent (positive).
    SchedMoveAccepted = 7,
    /// Candidate move/swap evaluated and rejected. Same payload; the
    /// margin is ≤ 0 (how far it missed the epsilon threshold).
    SchedMoveRejected = 8,
    /// One subgraph dispatch on the executor. detail = subgraph index,
    /// start/dur in *virtual* µs, arg0 = device (0 CPU, 1 GPU).
    ExecSubgraph = 9,
    /// One whole executor run. detail = subgraph count, dur = virtual
    /// latency µs.
    ExecRun = 10,
    /// One executed serving batch. detail = batch size, arg0 = virtual
    /// batch latency µs.
    ServeBatch = 11,
    /// One request's whole serving lifetime (admission → response).
    /// detail = batch the request executed in, wall µs.
    ServeRequest = 12,
    /// Queue-wait phase of one request (admission → worker pull),
    /// wall µs.
    ServeQueue = 13,
    /// Batch-linger phase of one request (worker pull → batch close),
    /// wall µs.
    ServeLinger = 14,
    /// Execution phase of one request (batch close → response ready),
    /// wall µs. arg0 = executed batch size.
    ServeExec = 15,
    /// Kernel-tape execution inside one subgraph dispatch. detail =
    /// tape instruction count, *virtual* µs, arg0 = device.
    ExecKernel = 16,
}

impl SpanKind {
    /// Pipeline stage this kind belongs to (Perfetto lane grouping).
    pub fn stage(self) -> &'static str {
        match self {
            SpanKind::CompileOptimize
            | SpanKind::PassFoldConstants
            | SpanKind::PassCse
            | SpanKind::PassDce => "compile",
            SpanKind::ProfileSubgraph => "profile",
            SpanKind::SchedCorrection
            | SpanKind::SchedRound
            | SpanKind::SchedMoveAccepted
            | SpanKind::SchedMoveRejected => "schedule",
            SpanKind::ExecSubgraph | SpanKind::ExecRun | SpanKind::ExecKernel => "execute",
            SpanKind::ServeBatch
            | SpanKind::ServeRequest
            | SpanKind::ServeQueue
            | SpanKind::ServeLinger
            | SpanKind::ServeExec => "serve",
        }
    }

    /// Human-readable event name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::CompileOptimize => "optimize",
            SpanKind::PassFoldConstants => "fold_constants",
            SpanKind::PassCse => "cse",
            SpanKind::PassDce => "dce",
            SpanKind::ProfileSubgraph => "profile_subgraph",
            SpanKind::SchedCorrection => "correction",
            SpanKind::SchedRound => "round",
            SpanKind::SchedMoveAccepted => "move_accepted",
            SpanKind::SchedMoveRejected => "move_rejected",
            SpanKind::ExecSubgraph => "subgraph",
            SpanKind::ExecRun => "run",
            SpanKind::ServeBatch => "batch",
            SpanKind::ServeRequest => "request",
            SpanKind::ServeQueue => "queue",
            SpanKind::ServeLinger => "linger",
            SpanKind::ServeExec => "exec",
            SpanKind::ExecKernel => "kernel",
        }
    }

    /// Inverse of the discriminant cast; `None` for out-of-range values
    /// (a persisted span from a newer build).
    pub fn from_u64(v: u64) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::CompileOptimize,
            1 => SpanKind::PassFoldConstants,
            2 => SpanKind::PassCse,
            3 => SpanKind::PassDce,
            4 => SpanKind::ProfileSubgraph,
            5 => SpanKind::SchedCorrection,
            6 => SpanKind::SchedRound,
            7 => SpanKind::SchedMoveAccepted,
            8 => SpanKind::SchedMoveRejected,
            9 => SpanKind::ExecSubgraph,
            10 => SpanKind::ExecRun,
            11 => SpanKind::ServeBatch,
            12 => SpanKind::ServeRequest,
            13 => SpanKind::ServeQueue,
            14 => SpanKind::ServeLinger,
            15 => SpanKind::ServeExec,
            16 => SpanKind::ExecKernel,
            _ => return None,
        })
    }
}

/// One recorded span (a snapshot copied out of the ring).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Global sequence number (total order of recording).
    pub seq: u64,
    pub kind: SpanKind,
    /// Kind-specific integer payload (see [`SpanKind`] docs).
    pub detail: u64,
    /// Start timestamp, microseconds (wall for offline stages, virtual
    /// for executor spans).
    pub start_us: f64,
    /// Duration, microseconds; 0 renders as an instant event.
    pub dur_us: f64,
    pub arg0: f64,
    pub arg1: f64,
    /// Causal trace this span belongs to; 0 = untraced (the span was
    /// recorded outside any request context).
    pub trace_id: u64,
    /// This span's id within the trace; 0 = untraced.
    pub span_id: u64,
    /// Id of the causal parent span; 0 = root (or untraced).
    pub parent_id: u64,
}

impl Span {
    /// Whether this span carries causal trace linkage.
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

struct Slot {
    /// Seqlock word: `2*seq + 1` while writing, `2*seq + 2` when
    /// published, 0 when never written.
    version: AtomicU64,
    kind: AtomicU64,
    detail: AtomicU64,
    start: AtomicU64,
    dur: AtomicU64,
    arg0: AtomicU64,
    arg1: AtomicU64,
    trace: AtomicU64,
    span_id: AtomicU64,
    parent: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            detail: AtomicU64::new(0),
            start: AtomicU64::new(0),
            dur: AtomicU64::new(0),
            arg0: AtomicU64::new(0),
            arg1: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity multi-writer span buffer. The global ring (via
/// [`record_span`]) is one instance; tests build small private ones.
pub struct SpanRing {
    slots: Box<[Slot]>,
    seq: AtomicU64,
    /// Spans with `seq <` floor are hidden (a cheap reset that does not
    /// race with in-flight writers).
    floor: AtomicU64,
}

impl SpanRing {
    /// Ring with `capacity` slots (rounded up to at least 1).
    pub fn with_capacity(capacity: usize) -> SpanRing {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
            seq: AtomicU64::new(0),
            floor: AtomicU64::new(0),
        }
    }

    /// Record one span. Lock-free and allocation-free.
    pub fn record(
        &self,
        kind: SpanKind,
        detail: u64,
        start_us: f64,
        dur_us: f64,
        a0: f64,
        a1: f64,
    ) {
        self.record_traced(kind, detail, start_us, dur_us, a0, a1, 0, 0, 0);
    }

    /// Record one span carrying causal trace linkage (trace id, own span
    /// id, parent span id; all 0 for untraced). Lock-free and
    /// allocation-free.
    #[allow(clippy::too_many_arguments)]
    pub fn record_traced(
        &self,
        kind: SpanKind,
        detail: u64,
        start_us: f64,
        dur_us: f64,
        a0: f64,
        a1: f64,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        slot.version.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.detail.store(detail, Ordering::Relaxed);
        slot.start.store(start_us.to_bits(), Ordering::Relaxed);
        slot.dur.store(dur_us.to_bits(), Ordering::Relaxed);
        slot.arg0.store(a0.to_bits(), Ordering::Relaxed);
        slot.arg1.store(a1.to_bits(), Ordering::Relaxed);
        slot.trace.store(trace_id, Ordering::Relaxed);
        slot.span_id.store(span_id, Ordering::Relaxed);
        slot.parent.store(parent_id, Ordering::Relaxed);
        slot.version.store(2 * seq + 2, Ordering::Release);
    }

    /// How many times [`collect`](SpanRing::collect) re-reads a slot it
    /// caught mid-write before giving up on it. A writer finishes a slot
    /// in a handful of stores, so one retry almost always suffices; the
    /// bound exists because a writer can be preempted mid-publish.
    pub const TORN_RETRY_LIMIT: u32 = 64;

    /// Copy out every published span at or above the floor, oldest
    /// first. A slot caught mid-write (or overwritten while reading) is
    /// re-read up to [`TORN_RETRY_LIMIT`](SpanRing::TORN_RETRY_LIMIT)
    /// times — each torn observation counts into
    /// `duet_insight_torn_reads_total{result="retried"}` — and only
    /// dropped (never misread) when the writer still hasn't published,
    /// counted under `result="skipped"`.
    pub fn collect(&self) -> Vec<Span> {
        let floor = self.floor.load(Ordering::Relaxed);
        let mut out: Vec<Span> = Vec::with_capacity(self.slots.len());
        'slots: for slot in self.slots.iter() {
            let mut attempts = 0u32;
            let (v1, payload) = loop {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 {
                    continue 'slots; // never written
                }
                if v1 % 2 == 0 {
                    let payload = [
                        slot.kind.load(Ordering::Relaxed),
                        slot.detail.load(Ordering::Relaxed),
                        slot.start.load(Ordering::Relaxed),
                        slot.dur.load(Ordering::Relaxed),
                        slot.arg0.load(Ordering::Relaxed),
                        slot.arg1.load(Ordering::Relaxed),
                        slot.trace.load(Ordering::Relaxed),
                        slot.span_id.load(Ordering::Relaxed),
                        slot.parent.load(Ordering::Relaxed),
                    ];
                    fence(Ordering::Acquire);
                    if slot.version.load(Ordering::Relaxed) == v1 {
                        break (v1, payload);
                    }
                }
                // Torn: a writer raced us (or holds the slot mid-write).
                crate::registry::INSIGHT_TORN_RETRIED.inc();
                attempts += 1;
                if attempts > Self::TORN_RETRY_LIMIT {
                    crate::registry::INSIGHT_TORN_SKIPPED.inc();
                    continue 'slots;
                }
                std::hint::spin_loop();
            };
            let [kind, detail, start, dur, arg0, arg1, trace, span_id, parent] = payload;
            let seq = v1 / 2 - 1;
            if seq < floor {
                continue;
            }
            let Some(kind) = SpanKind::from_u64(kind) else {
                continue;
            };
            out.push(Span {
                seq,
                kind,
                detail,
                start_us: f64::from_bits(start),
                dur_us: f64::from_bits(dur),
                arg0: f64::from_bits(arg0),
                arg1: f64::from_bits(arg1),
                trace_id: trace,
                span_id,
                parent_id: parent,
            });
        }
        out.sort_by_key(|s| s.seq);
        out
    }

    /// Hide everything recorded so far (new recordings still appear).
    pub fn reset(&self) {
        self.floor
            .store(self.seq.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

/// Global ring capacity: large enough for a full offline build plus a
/// few executor runs; the merged-trace path resets it first anyway.
const GLOBAL_RING_CAPACITY: usize = 16_384;

fn global_ring() -> &'static SpanRing {
    static RING: OnceLock<SpanRing> = OnceLock::new();
    RING.get_or_init(|| SpanRing::with_capacity(GLOBAL_RING_CAPACITY))
}

/// Microseconds since the process-wide telemetry epoch (first call).
pub fn clock_us() -> f64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// Record a span into the global ring (no-op when telemetry is off).
#[inline]
pub fn record_span(kind: SpanKind, detail: u64, start_us: f64, dur_us: f64, a0: f64, a1: f64) {
    if crate::enabled() {
        global_ring().record(kind, detail, start_us, dur_us, a0, a1);
    }
}

/// Record a causally-linked span into the global ring (no-op when
/// telemetry is off).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn record_span_traced(
    kind: SpanKind,
    detail: u64,
    start_us: f64,
    dur_us: f64,
    a0: f64,
    a1: f64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
) {
    if crate::enabled() {
        global_ring().record_traced(
            kind, detail, start_us, dur_us, a0, a1, trace_id, span_id, parent_id,
        );
    }
}

/// Record an instant event (zero duration, stamped now) into the global
/// ring.
#[inline]
pub fn record_instant(kind: SpanKind, detail: u64, a0: f64, a1: f64) {
    if crate::enabled() {
        global_ring().record(kind, detail, clock_us(), 0.0, a0, a1);
    }
}

/// Snapshot the global ring, oldest span first.
pub fn spans() -> Vec<Span> {
    global_ring().collect()
}

/// Hide all spans recorded in the global ring so far.
pub fn reset_spans() {
    global_ring().reset();
}
