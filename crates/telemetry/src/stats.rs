//! Shared percentile arithmetic and the bounded sample reservoir.
//!
//! [`percentile_sorted`] is THE nearest-rank implementation for the
//! whole workspace: `duet_runtime::LatencyStats` and the serving
//! metrics both delegate here, so the ulp-epsilon rank fix lives in
//! exactly one place.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Percentile by the nearest-rank method over an ascending-sorted slice.
/// `q` in `[0, 100]`. Panics on an empty slice — a summary over no
/// samples is a harness bug.
///
/// Nearest rank is ⌈q/100 · n⌉, but `q / 100.0` is inexact — e.g.
/// 99.9/100 · 1000 evaluates to 999.0000000000001 and a bare ceil would
/// overshoot to rank 1000. Shaving one ulp-scale epsilon before the
/// ceil restores exact ranks while leaving genuinely fractional
/// products (which ceil upward regardless) untouched.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "percentile of an empty sample set");
    let rank = ((q / 100.0) * n as f64 * (1.0 - 1e-12)).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Bounded uniform sample reservoir (Vitter's Algorithm R with a
/// deterministic splitmix64 stream, so tests reproduce exactly).
///
/// Memory is fixed at construction: the backing `Vec` is pre-allocated
/// to capacity and never grows, which is what lets a serving process
/// keep per-request latency percentiles under sustained load without
/// unbounded growth.
#[derive(Debug)]
pub struct Reservoir {
    cap: usize,
    seen: AtomicU64,
    samples: Mutex<Vec<f64>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Reservoir {
    /// Reservoir keeping at most `cap` samples.
    pub fn new(cap: usize) -> Reservoir {
        let cap = cap.max(1);
        Reservoir {
            cap,
            seen: AtomicU64::new(0),
            samples: Mutex::new(Vec::with_capacity(cap)),
        }
    }

    /// Record one observation. Allocation-free after construction.
    pub fn record(&self, v: f64) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        let mut s = self.samples.lock().expect("reservoir poisoned");
        if s.len() < self.cap {
            s.push(v);
        } else {
            // Uniform replacement: keep v with probability cap/(n+1).
            let j = (splitmix64(n) % (n + 1)) as usize;
            if j < self.cap {
                s[j] = v;
            }
        }
    }

    /// Observations offered so far (including discarded ones).
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("reservoir poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the held samples (unsorted).
    pub fn snapshot(&self) -> Vec<f64> {
        self.samples.lock().expect("reservoir poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_exact_integer_definition() {
        for n in 1..12usize {
            let sorted: Vec<f64> = (1..=n).map(|x| x as f64).collect();
            for q10 in 0..=1000u64 {
                let want = (q10 * n as u64).div_ceil(1000).clamp(1, n as u64);
                let got = percentile_sorted(&sorted, q10 as f64 / 10.0);
                assert_eq!(got, want as f64, "n={n} q={}", q10 as f64 / 10.0);
            }
        }
    }

    #[test]
    fn ulp_epsilon_keeps_rank_exact() {
        let sorted: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(percentile_sorted(&sorted, 99.9), 999.0);
        assert_eq!(percentile_sorted(&sorted, 99.0), 990.0);
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let r = Reservoir::new(64);
        for i in 0..10_000 {
            r.record(i as f64);
        }
        assert_eq!(r.len(), 64);
        assert_eq!(r.seen(), 10_000);
        let again = Reservoir::new(64);
        for i in 0..10_000 {
            again.record(i as f64);
        }
        assert_eq!(r.snapshot(), again.snapshot());
    }

    #[test]
    fn reservoir_below_capacity_keeps_everything() {
        let r = Reservoir::new(100);
        for i in 0..40 {
            r.record(i as f64);
        }
        let mut s = r.snapshot();
        s.sort_by(f64::total_cmp);
        assert_eq!(s, (0..40).map(|i| i as f64).collect::<Vec<_>>());
    }
}
