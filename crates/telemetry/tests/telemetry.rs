//! Integration tests: concurrent exactness, Prometheus golden format,
//! span-ring wraparound. Global-registry statics are shared across the
//! test process, so format tests use *local* metric instances and only
//! presence (never values) is asserted on the global rendering.

use duet_telemetry::metric::{Counter, Gauge, Histogram};
use duet_telemetry::{render_prometheus, SpanKind, SpanRing};

#[test]
fn concurrent_counter_and_histogram_are_exact() {
    static C: Counter = Counter::new("t_concurrent_total", "test");
    static H: Histogram = Histogram::new("t_concurrent_us", "test");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    C.inc();
                    H.observe(t as u64 * PER_THREAD + i);
                }
            });
        }
    });
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(C.get(), total);
    assert_eq!(H.count(), total);
    // Sum of 0..80000.
    assert_eq!(H.sum(), total * (total - 1) / 2);
    let bucketed: u64 = H.nonzero_buckets().iter().map(|&(_, n)| n).sum();
    assert_eq!(bucketed, total);
}

#[test]
fn prometheus_rendering_matches_golden() {
    static REQS_A: Counter = Counter::with_label("t_requests_total", "Requests", "code", "200");
    static REQS_B: Counter = Counter::with_label("t_requests_total", "Requests", "code", "500");
    static DEPTH: Gauge = Gauge::new("t_depth", "Queue depth");
    static LAT: Histogram = Histogram::new("t_latency_us", "Latency");
    REQS_A.add(3);
    REQS_B.inc();
    DEPTH.set(-2);
    for v in [1u64, 1, 3, 9] {
        LAT.observe(v);
    }
    let text = render_prometheus(&[&REQS_A, &REQS_B], &[&DEPTH], &[&LAT]);
    let golden = "\
# HELP t_requests_total Requests
# TYPE t_requests_total counter
t_requests_total{code=\"200\"} 3
t_requests_total{code=\"500\"} 1
# HELP t_depth Queue depth
# TYPE t_depth gauge
t_depth -2
# HELP t_latency_us Latency
# TYPE t_latency_us histogram
t_latency_us_bucket{le=\"1\"} 2
t_latency_us_bucket{le=\"3\"} 3
t_latency_us_bucket{le=\"15\"} 4
t_latency_us_bucket{le=\"+Inf\"} 4
t_latency_us_sum 14
t_latency_us_count 4
";
    assert_eq!(text, golden);
}

#[test]
fn global_exposition_contains_every_required_family() {
    let text = duet_telemetry::prometheus_text();
    for family in [
        "duet_compile_pass_wall_us_total",
        "duet_profile_samples_total",
        "duet_sched_moves_evaluated_total",
        "duet_sched_moves_accepted_total",
        "duet_sched_predicted_latency_us",
        "duet_tape_runs_total",
        "duet_arena_checkouts_total",
        "duet_serve_batches_total",
        "duet_serve_shed_total",
        "duet_serve_sojourn_us",
        "duet_serve_queue_depth",
    ] {
        assert!(text.contains(family), "missing family {family}");
    }
    // Labelled families carry their variants even at zero.
    assert!(text.contains("duet_arena_checkouts_total{result=\"reused\"}"));
    assert!(text.contains("duet_serve_shed_total{reason=\"expired\"}"));
}

#[test]
fn span_ring_wraps_keeping_newest() {
    let ring = SpanRing::with_capacity(8);
    for i in 0..20u64 {
        ring.record(SpanKind::ExecSubgraph, i, i as f64, 1.0, 0.0, 0.0);
    }
    let spans = ring.collect();
    assert_eq!(spans.len(), 8);
    // The newest 8 survive, oldest first.
    let details: Vec<u64> = spans.iter().map(|s| s.detail).collect();
    assert_eq!(details, (12..20).collect::<Vec<_>>());
    assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(ring.recorded(), 20);
}

#[test]
fn span_ring_reset_hides_existing_spans() {
    let ring = SpanRing::with_capacity(8);
    ring.record(SpanKind::ExecRun, 1, 0.0, 5.0, 0.0, 0.0);
    ring.reset();
    assert!(ring.collect().is_empty());
    ring.record(SpanKind::ExecRun, 2, 5.0, 5.0, 0.0, 0.0);
    let spans = ring.collect();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].detail, 2);
}

#[test]
fn concurrent_span_writers_never_produce_torn_reads() {
    let ring = SpanRing::with_capacity(64);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let ring = &ring;
            s.spawn(move || {
                for i in 0..5_000u64 {
                    // Payload fields all derive from detail, so a torn
                    // mix of two writes is detectable.
                    let d = t * 1_000_000 + i;
                    ring.record(SpanKind::ExecSubgraph, d, d as f64, d as f64, d as f64, 0.0);
                }
            });
        }
        let ring = &ring;
        s.spawn(move || {
            for _ in 0..200 {
                for sp in ring.collect() {
                    assert_eq!(sp.start_us, sp.detail as f64, "torn span read");
                    assert_eq!(sp.dur_us, sp.detail as f64, "torn span read");
                }
            }
        });
    });
    assert_eq!(ring.recorded(), 20_000);
}
