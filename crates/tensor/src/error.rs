//! Error type shared by every tensor kernel.

use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// Kernels validate shapes up front and never panic on malformed input; a
/// shape mismatch in a scheduled subgraph must surface as a recoverable
/// error so the executor can abort the inference cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count implied by a shape does not match the buffer length.
    LengthMismatch { expected: usize, actual: usize },
    /// Two operands have incompatible shapes for the requested kernel.
    ShapeMismatch {
        op: &'static str,
        lhs: Vec<usize>,
        rhs: Vec<usize>,
    },
    /// A tensor had the wrong rank for the requested kernel.
    RankMismatch {
        op: &'static str,
        expected: usize,
        actual: usize,
    },
    /// A parameter (stride, axis, window, …) is out of range.
    InvalidArgument { op: &'static str, msg: String },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidArgument { op, msg } => write!(f, "{op}: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("[2, 3]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
