//! Attention kernels for the MT-DNN transformer encoder.

use super::gemm::{batched_matmul, matmul};
use super::linalg::transpose2d;
use super::norm::softmax;
use crate::{Tensor, TensorError};

/// Scaled dot-product attention.
///
/// `q, k, v: [seq, d]` (single head). Returns `softmax(q k^T / sqrt(d)) v`.
pub fn scaled_dot_attention(q: &Tensor, k: &Tensor, v: &Tensor) -> Result<Tensor, TensorError> {
    q.shape().expect_rank("attention", 2)?;
    k.shape().expect_rank("attention", 2)?;
    v.shape().expect_rank("attention", 2)?;
    let d = q.shape().dim(1);
    if k.shape().dim(1) != d || k.shape().dim(0) != v.shape().dim(0) {
        return Err(TensorError::ShapeMismatch {
            op: "attention",
            lhs: q.shape().dims().to_vec(),
            rhs: k.shape().dims().to_vec(),
        });
    }
    let kt = transpose2d(k)?;
    let scores = matmul(q, &kt)?;
    let scaled = super::elementwise::scale(&scores, 1.0 / (d as f32).sqrt());
    let probs = softmax(&scaled)?;
    matmul(&probs, v)
}

/// Multi-head self-attention over `x: [seq, d_model]`.
///
/// `w_q, w_k, w_v, w_o` are `[d_model, d_model]` projection matrices and
/// `d_model` must be divisible by `heads`. This is the fused QKV form used
/// by BERT-style encoders (MT-DNN's shared layers).
pub fn multi_head_attention(
    x: &Tensor,
    w_q: &Tensor,
    w_k: &Tensor,
    w_v: &Tensor,
    w_o: &Tensor,
    heads: usize,
) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("mha", 2)?;
    let (seq, d_model) = (x.shape().dim(0), x.shape().dim(1));
    if heads == 0 || d_model % heads != 0 {
        return Err(TensorError::InvalidArgument {
            op: "mha",
            msg: format!("d_model {d_model} not divisible by heads {heads}"),
        });
    }
    for w in [w_q, w_k, w_v, w_o] {
        w.shape().expect_rank("mha", 2)?;
        if w.shape().dim(0) != d_model || w.shape().dim(1) != d_model {
            return Err(TensorError::ShapeMismatch {
                op: "mha",
                lhs: vec![d_model, d_model],
                rhs: w.shape().dims().to_vec(),
            });
        }
    }
    let dh = d_model / heads;
    let q = matmul(x, w_q)?;
    let k = matmul(x, w_k)?;
    let v = matmul(x, w_v)?;
    // Reshape [seq, heads*dh] into per-head [heads, seq, dh] batches.
    let to_heads = |t: &Tensor| -> Tensor {
        let mut out = vec![0.0f32; seq * d_model];
        for s in 0..seq {
            for h in 0..heads {
                for j in 0..dh {
                    out[(h * seq + s) * dh + j] = t.data()[s * d_model + h * dh + j];
                }
            }
        }
        Tensor::from_vec(vec![heads, seq, dh], out).expect("volume preserved")
    };
    let qh = to_heads(&q);
    let kh = to_heads(&k);
    let vh = to_heads(&v);
    // scores = qh @ kh^T per head.
    let mut kt = vec![0.0f32; heads * dh * seq];
    for h in 0..heads {
        for s in 0..seq {
            for j in 0..dh {
                kt[(h * dh + j) * seq + s] = kh.data()[(h * seq + s) * dh + j];
            }
        }
    }
    let kt = Tensor::from_vec(vec![heads, dh, seq], kt)?;
    let scores = batched_matmul(&qh, &kt)?;
    let scaled = super::elementwise::scale(&scores, 1.0 / (dh as f32).sqrt());
    let probs = softmax(&scaled)?;
    let ctx = batched_matmul(&probs, &vh)?; // [heads, seq, dh]
                                            // Merge heads back to [seq, d_model].
    let mut merged = vec![0.0f32; seq * d_model];
    for h in 0..heads {
        for s in 0..seq {
            for j in 0..dh {
                merged[s * d_model + h * dh + j] = ctx.data()[(h * seq + s) * dh + j];
            }
        }
    }
    let merged = Tensor::from_vec(vec![seq, d_model], merged)?;
    matmul(&merged, w_o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_uniform_scores_average_values() {
        // q ⊥ k (all zeros) → uniform attention → output is the mean of v.
        let q = Tensor::zeros(vec![3, 4]);
        let k = Tensor::zeros(vec![5, 4]);
        let v = Tensor::randn(vec![5, 4], 1.0, 1);
        let out = scaled_dot_attention(&q, &k, &v).unwrap();
        for row in out.data().chunks(4) {
            for (j, &r) in row.iter().enumerate() {
                let mean: f32 = (0..5).map(|s| v.data()[s * 4 + j]).sum::<f32>() / 5.0;
                assert!((r - mean).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_peaked_scores_select_value() {
        // Query matching key 2 with a huge dot product selects v[2].
        let mut qd = vec![0.0; 4];
        qd[0] = 100.0;
        let q = Tensor::from_vec(vec![1, 4], qd).unwrap();
        let mut kd = vec![0.0; 3 * 4];
        kd[2 * 4] = 1.0; // key 2 aligned with q
        let k = Tensor::from_vec(vec![3, 4], kd).unwrap();
        let v = Tensor::randn(vec![3, 4], 1.0, 2);
        let out = scaled_dot_attention(&q, &k, &v).unwrap();
        for j in 0..4 {
            assert!((out.data()[j] - v.data()[2 * 4 + j]).abs() < 1e-4);
        }
    }

    #[test]
    fn attention_rejects_dim_mismatch() {
        let q = Tensor::zeros(vec![2, 4]);
        let k = Tensor::zeros(vec![3, 5]);
        let v = Tensor::zeros(vec![3, 4]);
        assert!(scaled_dot_attention(&q, &k, &v).is_err());
    }

    #[test]
    fn mha_single_head_matches_single_head_attention_with_identity_proj() {
        let seq = 4;
        let d = 6;
        let x = Tensor::randn(vec![seq, d], 1.0, 3);
        let i = Tensor::eye(d);
        let out = multi_head_attention(&x, &i, &i, &i, &i, 1).unwrap();
        let reference = scaled_dot_attention(&x, &x, &x).unwrap();
        assert!(out.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn mha_output_shape() {
        let x = Tensor::randn(vec![8, 16], 1.0, 4);
        let w = Tensor::randn(vec![16, 16], 0.2, 5);
        let y = multi_head_attention(&x, &w, &w, &w, &w, 4).unwrap();
        assert_eq!(y.shape().dims(), &[8, 16]);
    }

    #[test]
    fn mha_rejects_indivisible_heads() {
        let x = Tensor::zeros(vec![4, 6]);
        let w = Tensor::zeros(vec![6, 6]);
        assert!(multi_head_attention(&x, &w, &w, &w, &w, 4).is_err());
        assert!(multi_head_attention(&x, &w, &w, &w, &w, 0).is_err());
    }
}
