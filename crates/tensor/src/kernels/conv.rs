//! Convolution and pooling kernels (NCHW layout).
//!
//! `conv2d` lowers to im2col + blocked GEMM — the same lowering TVM's CPU
//! backend uses as a baseline schedule — so its FLOP profile matches the
//! analytic cost model in `duet-device`.

use rayon::prelude::*;

use super::gemm::gemm_into;
use crate::{Tensor, TensorError};

/// 2-D convolution. `x: [n, c_in, h, w]`, `weight: [c_out, c_in, kh, kw]`,
/// optional `bias: [c_out]`, symmetric `stride`/`padding`.
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("conv2d", 4)?;
    weight.shape().expect_rank("conv2d", 4)?;
    if stride == 0 {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            msg: "stride must be >= 1".into(),
        });
    }
    let (n, c_in, h, w) = dims4(x);
    let (c_out, c_in2, kh, kw) = dims4(weight);
    if c_in != c_in2 {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d",
            lhs: x.shape().dims().to_vec(),
            rhs: weight.shape().dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != c_out {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d",
                lhs: vec![c_out],
                rhs: b.shape().dims().to_vec(),
            });
        }
    }
    if h + 2 * padding < kh || w + 2 * padding < kw {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            msg: format!("kernel {kh}x{kw} larger than padded input {h}x{w}+{padding}"),
        });
    }
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (w + 2 * padding - kw) / stride + 1;
    let mut out = vec![0.0f32; n * c_out * oh * ow];
    conv2d_into(x, weight, bias, stride, padding, &mut out)?;
    Tensor::from_vec(vec![n, c_out, oh, ow], out)
}

/// [`conv2d`] into a caller-provided buffer (`out` is overwritten; len
/// `n * c_out * oh * ow`). Same im2col + blocked-GEMM lowering, so the
/// bytes written are identical to the allocating entry point.
pub fn conv2d_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
    out: &mut [f32],
) -> Result<(), TensorError> {
    x.shape().expect_rank("conv2d", 4)?;
    weight.shape().expect_rank("conv2d", 4)?;
    let (n, c_in, h, w) = dims4(x);
    let (c_out, c_in2, kh, kw) = dims4(weight);
    if stride == 0 || c_in != c_in2 || h + 2 * padding < kh || w + 2 * padding < kw {
        return Err(TensorError::InvalidArgument {
            op: "conv2d",
            msg: "bad stride, channel or kernel geometry".into(),
        });
    }
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (w + 2 * padding - kw) / stride + 1;
    let xd = x.data();
    let wd = weight.data();
    let bd = bias.map(Tensor::data);

    let patch = c_in * kh * kw;
    let opix = oh * ow;
    if out.len() != n * c_out * opix {
        return Err(TensorError::LengthMismatch {
            expected: n * c_out * opix,
            actual: out.len(),
        });
    }
    // One im2col buffer + GEMM per image; images are processed in parallel.
    // No zero-fill pass: gemm_into overwrites every output element.
    out.par_chunks_mut(c_out * opix)
        .enumerate()
        .for_each(|(img, oimg)| {
            let ximg = &xd[img * c_in * h * w..(img + 1) * c_in * h * w];
            let mut col = vec![0.0f32; patch * opix];
            im2col(ximg, &mut col, c_in, h, w, kh, kw, stride, padding, oh, ow);
            // weight [c_out, patch] x col [patch, opix] -> oimg [c_out, opix]
            gemm_into(wd, &col, oimg, c_out, patch, opix);
            if let Some(b) = bd {
                for (co, chunk) in oimg.chunks_mut(opix).enumerate() {
                    let bv = b[co];
                    for v in chunk.iter_mut() {
                        *v += bv;
                    }
                }
            }
        });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn im2col(
    x: &[f32],
    col: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) {
    let opix = oh * ow;
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let dst = &mut col[row * opix..(row + 1) * opix];
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - padding as isize;
                    let drow = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy as usize >= h {
                        drow.fill(0.0);
                        continue;
                    }
                    let xrow = &x[ci * h * w + iy as usize * w..ci * h * w + (iy as usize + 1) * w];
                    if stride == 1 {
                        // Contiguous tap: ix = ox + kj - padding, so the
                        // in-bounds span is one memcpy with zero margins.
                        let ox_lo = padding.saturating_sub(kj).min(ow);
                        let ox_hi = (w + padding).saturating_sub(kj).min(ow).max(ox_lo);
                        drow[..ox_lo].fill(0.0);
                        drow[ox_hi..].fill(0.0);
                        let ix0 = ox_lo + kj - padding;
                        drow[ox_lo..ox_hi].copy_from_slice(&xrow[ix0..ix0 + (ox_hi - ox_lo)]);
                    } else {
                        for (ox, d) in drow.iter_mut().enumerate() {
                            let ix = (ox * stride + kj) as isize - padding as isize;
                            *d = if ix >= 0 && (ix as usize) < w {
                                xrow[ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    (
        t.shape().dim(0),
        t.shape().dim(1),
        t.shape().dim(2),
        t.shape().dim(3),
    )
}

fn pool2d(
    op: &'static str,
    x: &Tensor,
    window: usize,
    stride: usize,
    reduce: impl Fn(&mut f32, f32) + Sync,
    init: f32,
    finish: impl Fn(f32, usize) -> f32 + Sync,
) -> Result<Tensor, TensorError> {
    x.shape().expect_rank(op, 4)?;
    if window == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            msg: "window/stride must be >= 1".into(),
        });
    }
    let (n, c, h, w) = dims4(x);
    if h < window || w < window {
        return Err(TensorError::InvalidArgument {
            op,
            msg: format!("window {window} larger than input {h}x{w}"),
        });
    }
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    out.par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(plane, oplane)| {
            let xplane = &xd[plane * h * w..(plane + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = init;
                    for ky in 0..window {
                        for kx in 0..window {
                            reduce(&mut acc, xplane[(oy * stride + ky) * w + ox * stride + kx]);
                        }
                    }
                    oplane[oy * ow + ox] = finish(acc, window * window);
                }
            }
        });
    let _ = (n, c);
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// Max-pool with square window.
pub fn max_pool2d(x: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    pool2d(
        "max_pool2d",
        x,
        window,
        stride,
        |a, v| *a = a.max(v),
        f32::NEG_INFINITY,
        |a, _| a,
    )
}

/// Average-pool with square window.
pub fn avg_pool2d(x: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    pool2d(
        "avg_pool2d",
        x,
        window,
        stride,
        |a, v| *a += v,
        0.0,
        |a, n| a / n as f32,
    )
}

/// Global average pool: `[n, c, h, w]` → `[n, c]`.
pub fn global_avg_pool2d(x: &Tensor) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("global_avg_pool2d", 4)?;
    let (n, c, h, w) = dims4(x);
    if h * w == 0 {
        return Err(TensorError::InvalidArgument {
            op: "global_avg_pool2d",
            msg: "spatial dims must be non-empty".into(),
        });
    }
    let plane = h * w;
    let data: Vec<f32> = x
        .data()
        .chunks(plane)
        .map(|p| p.iter().sum::<f32>() / plane as f32)
        .collect();
    Tensor::from_vec(vec![n, c], data)
}

/// Depthwise 2-D convolution: each input channel is convolved with its
/// own single filter. `x: [n, c, h, w]`, `weight: [c, 1, kh, kw]`,
/// optional `bias: [c]`. The building block of MobileNet-style networks.
pub fn depthwise_conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("depthwise_conv2d", 4)?;
    weight.shape().expect_rank("depthwise_conv2d", 4)?;
    if stride == 0 {
        return Err(TensorError::InvalidArgument {
            op: "depthwise_conv2d",
            msg: "stride must be >= 1".into(),
        });
    }
    let (n, c, h, w) = dims4(x);
    let (cw, one, kh, kw) = dims4(weight);
    if cw != c || one != 1 {
        return Err(TensorError::ShapeMismatch {
            op: "depthwise_conv2d",
            lhs: x.shape().dims().to_vec(),
            rhs: weight.shape().dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "depthwise_conv2d",
                lhs: vec![c],
                rhs: b.shape().dims().to_vec(),
            });
        }
    }
    if h + 2 * padding < kh || w + 2 * padding < kw {
        return Err(TensorError::InvalidArgument {
            op: "depthwise_conv2d",
            msg: "kernel larger than padded input".into(),
        });
    }
    let oh = (h + 2 * padding - kh) / stride + 1;
    let ow = (w + 2 * padding - kw) / stride + 1;
    let xd = x.data();
    let wd = weight.data();
    let bd = bias.map(Tensor::data);
    let mut out = vec![0.0f32; n * c * oh * ow];
    // Each (image, channel) plane is independent: parallelise over planes.
    out.par_chunks_mut(oh * ow)
        .enumerate()
        .for_each(|(plane, oplane)| {
            let ci = plane % c;
            let xplane = &xd[plane * h * w..(plane + 1) * h * w];
            let wplane = &wd[ci * kh * kw..(ci + 1) * kh * kw];
            let bv = bd.map_or(0.0, |b| b[ci]);
            depthwise_plane(
                xplane, wplane, oplane, h, w, kh, kw, stride, padding, oh, ow, bv,
            );
        });
    Tensor::from_vec(vec![n, c, oh, ow], out)
}

/// One (image, channel) plane of the depthwise conv.
///
/// The stride-1 interior runs 8 outputs per step with lane accumulators;
/// each output element still accumulates `bias, then taps in (ky, kx)
/// ascending order` — exactly the scalar kernel's chain — so the
/// vectorized path is **bit-identical** to the scalar one (exact
/// contract: independent outputs, no reassociation). Edges, stride > 1
/// and reference mode take the scalar path.
#[allow(clippy::too_many_arguments)]
fn depthwise_plane(
    x: &[f32],
    wk: &[f32],
    o: &mut [f32],
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
    bv: f32,
) {
    const L: usize = 8;
    if super::reference::reference_mode() || stride != 1 {
        for oy in 0..oh {
            depthwise_scalar_span(
                x,
                wk,
                &mut o[oy * ow..(oy + 1) * ow],
                oy,
                0,
                ow,
                h,
                w,
                kh,
                kw,
                stride,
                padding,
                bv,
            );
        }
        return;
    }
    // Interior span where every kx tap is in bounds (stride 1):
    // ox >= padding and ox + kw - 1 - padding < w.
    let ox_lo = padding.min(ow);
    let ox_hi = (w + padding + 1).saturating_sub(kw).min(ow).max(ox_lo);
    for oy in 0..oh {
        let rows_ok = oy >= padding && oy + kh <= h + padding;
        let orow = &mut o[oy * ow..(oy + 1) * ow];
        if !rows_ok {
            depthwise_scalar_span(x, wk, orow, oy, 0, ow, h, w, kh, kw, 1, padding, bv);
            continue;
        }
        let iy0 = oy - padding;
        depthwise_scalar_span(x, wk, orow, oy, 0, ox_lo, h, w, kh, kw, 1, padding, bv);
        let mut ox = ox_lo;
        while ox + L <= ox_hi {
            let mut acc = [bv; L];
            for ky in 0..kh {
                let xrow = &x[(iy0 + ky) * w..(iy0 + ky + 1) * w];
                for kx in 0..kw {
                    let wv = wk[ky * kw + kx];
                    let base = ox + kx - padding;
                    let xs = <&[f32; L]>::try_from(&xrow[base..base + L]).unwrap();
                    for l in 0..L {
                        acc[l] += xs[l] * wv;
                    }
                }
            }
            orow[ox..ox + L].copy_from_slice(&acc);
            ox += L;
        }
        depthwise_scalar_span(x, wk, orow, oy, ox, ow, h, w, kh, kw, 1, padding, bv);
    }
}

/// Scalar depthwise span `[ox0, ox1)` of output row `oy`: the seed tap
/// loop (bias first, then in-bounds taps in (ky, kx) ascending order).
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn depthwise_scalar_span(
    x: &[f32],
    wk: &[f32],
    orow: &mut [f32],
    oy: usize,
    ox0: usize,
    ox1: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    bv: f32,
) {
    for ox in ox0..ox1 {
        let mut acc = bv;
        for ky in 0..kh {
            let iy = (oy * stride + ky) as isize - padding as isize;
            if iy < 0 || iy as usize >= h {
                continue;
            }
            for kx in 0..kw {
                let ix = (ox * stride + kx) as isize - padding as isize;
                if ix < 0 || ix as usize >= w {
                    continue;
                }
                acc += x[iy as usize * w + ix as usize] * wk[ky * kw + kx];
            }
        }
        orow[ox] = acc;
    }
}

/// Inference-mode batch norm over NCHW input with per-channel statistics.
///
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, all params `[c]`.
pub fn batch_norm2d(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("batch_norm2d", 4)?;
    let (n, c, h, w) = dims4(x);
    for p in [gamma, beta, mean, var] {
        p.shape().expect_rank("batch_norm2d", 1)?;
        if p.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "batch_norm2d",
                lhs: x.shape().dims().to_vec(),
                rhs: p.shape().dims().to_vec(),
            });
        }
    }
    let plane = h * w;
    let (g, b, m, v) = (gamma.data(), beta.data(), mean.data(), var.data());
    let mut out = vec![0.0f32; x.len()];
    for img in 0..n {
        for ci in 0..c {
            let scale = g[ci] / (v[ci] + eps).sqrt();
            let shift = b[ci] - m[ci] * scale;
            let base = (img * c + ci) * plane;
            for i in 0..plane {
                out[base + i] = x.data()[base + i] * scale + shift;
            }
        }
    }
    Tensor::from_vec(x.shape().clone(), out)
}

/// Validate batch-norm parameter shapes against an NCHW input shape.
/// Returns `(n, c, plane)`.
fn batch_norm2d_check(
    shape: &crate::Shape,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
) -> Result<(usize, usize, usize), TensorError> {
    shape.expect_rank("batch_norm2d", 4)?;
    let (n, c) = (shape.dim(0), shape.dim(1));
    for p in [gamma, beta, mean, var] {
        p.shape().expect_rank("batch_norm2d", 1)?;
        if p.len() != c {
            return Err(TensorError::ShapeMismatch {
                op: "batch_norm2d",
                lhs: shape.dims().to_vec(),
                rhs: p.shape().dims().to_vec(),
            });
        }
    }
    Ok((n, c, shape.dim(2) * shape.dim(3)))
}

/// Writing variant of [`batch_norm2d`]: identical per-channel
/// scale/shift loop, result into a caller-owned buffer.
pub fn batch_norm2d_into(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (n, c, plane) = batch_norm2d_check(x.shape(), gamma, beta, mean, var)?;
    if out.len() != x.len() {
        return Err(TensorError::LengthMismatch {
            expected: x.len(),
            actual: out.len(),
        });
    }
    let (g, b, m, v) = (gamma.data(), beta.data(), mean.data(), var.data());
    for img in 0..n {
        for ci in 0..c {
            let scale = g[ci] / (v[ci] + eps).sqrt();
            let shift = b[ci] - m[ci] * scale;
            let base = (img * c + ci) * plane;
            for i in 0..plane {
                out[base + i] = x.data()[base + i] * scale + shift;
            }
        }
    }
    Ok(())
}

/// In-place variant of [`batch_norm2d`]: `buf` is both the NCHW input
/// and the destination. Elementwise per position, so overwriting is
/// safe — each element is read exactly once, before its write.
pub fn batch_norm2d_inplace(
    buf: &mut [f32],
    shape: &crate::Shape,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Result<(), TensorError> {
    let (n, c, plane) = batch_norm2d_check(shape, gamma, beta, mean, var)?;
    if buf.len() != shape.volume() {
        return Err(TensorError::LengthMismatch {
            expected: shape.volume(),
            actual: buf.len(),
        });
    }
    let (g, b, m, v) = (gamma.data(), beta.data(), mean.data(), var.data());
    for img in 0..n {
        for ci in 0..c {
            let scale = g[ci] / (v[ci] + eps).sqrt();
            let shift = b[ci] - m[ci] * scale;
            let base = (img * c + ci) * plane;
            for i in 0..plane {
                buf[base + i] = buf[base + i] * scale + shift;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(x: &Tensor, w: &Tensor, stride: usize, padding: usize) -> Tensor {
        let (n, c_in, h, wd) = dims4(x);
        let (c_out, _, kh, kw) = dims4(w);
        let oh = (h + 2 * padding - kh) / stride + 1;
        let ow = (wd + 2 * padding - kw) / stride + 1;
        let mut out = vec![0.0f32; n * c_out * oh * ow];
        for img in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c_in {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - padding as isize;
                                    let ix = (ox * stride + kx) as isize - padding as isize;
                                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < wd
                                    {
                                        acc += x.data()[((img * c_in + ci) * h + iy as usize) * wd
                                            + ix as usize]
                                            * w.data()[((co * c_in + ci) * kh + ky) * kw + kx];
                                    }
                                }
                            }
                        }
                        out[((img * c_out + co) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(vec![n, c_out, oh, ow], out).unwrap()
    }

    #[test]
    fn conv2d_matches_naive() {
        let x = Tensor::randn(vec![2, 3, 8, 8], 1.0, 1);
        let w = Tensor::randn(vec![4, 3, 3, 3], 1.0, 2);
        for &(s, p) in &[(1, 0), (1, 1), (2, 1), (2, 0)] {
            let fast = conv2d(&x, &w, None, s, p).unwrap();
            let slow = naive_conv(&x, &w, s, p);
            assert!(fast.approx_eq(&slow, 1e-3), "stride {s} pad {p}");
        }
    }

    #[test]
    fn conv2d_output_shape() {
        let x = Tensor::zeros(vec![1, 3, 224, 224]);
        let w = Tensor::zeros(vec![64, 3, 7, 7]);
        let y = conv2d(&x, &w, None, 2, 3).unwrap();
        assert_eq!(y.shape().dims(), &[1, 64, 112, 112]);
    }

    #[test]
    fn conv2d_bias_adds_per_channel() {
        let x = Tensor::ones(vec![1, 1, 3, 3]);
        let w = Tensor::zeros(vec![2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap();
        let y = conv2d(&x, &w, Some(&b), 1, 0).unwrap();
        assert!(y.data()[..9].iter().all(|&v| v == 1.0));
        assert!(y.data()[9..].iter().all(|&v| v == -1.0));
    }

    #[test]
    fn conv2d_rejects_bad_inputs() {
        let x = Tensor::zeros(vec![1, 3, 8, 8]);
        let w_bad_cin = Tensor::zeros(vec![4, 2, 3, 3]);
        assert!(conv2d(&x, &w_bad_cin, None, 1, 1).is_err());
        let w = Tensor::zeros(vec![4, 3, 3, 3]);
        assert!(conv2d(&x, &w, None, 0, 1).is_err());
        let w_huge = Tensor::zeros(vec![4, 3, 20, 20]);
        assert!(conv2d(&x, &w_huge, None, 1, 0).is_err());
    }

    #[test]
    fn max_pool_takes_window_max() {
        let x = Tensor::from_vec(vec![1, 1, 4, 4], (0..16).map(|v| v as f32).collect()).unwrap();
        let y = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_takes_window_mean() {
        let x = Tensor::ones(vec![1, 2, 4, 4]);
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-7));
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        assert!(max_pool2d(&x, 3, 1).is_err());
        assert!(avg_pool2d(&x, 0, 1).is_err());
    }

    #[test]
    fn global_avg_pool_shape_and_value() {
        let x =
            Tensor::from_vec(vec![1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]).unwrap();
        let y = global_avg_pool2d(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn batch_norm_normalises_channel() {
        let x = Tensor::from_vec(vec![1, 1, 1, 4], vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let y = batch_norm2d(
            &x,
            &Tensor::ones(vec![1]),
            &Tensor::zeros(vec![1]),
            &Tensor::from_vec(vec![1], vec![5.0]).unwrap(),
            &Tensor::from_vec(vec![1], vec![5.0]).unwrap(),
            0.0,
        )
        .unwrap();
        let s = 5.0f32.sqrt();
        let expect = [-3.0 / s, -1.0 / s, 1.0 / s, 3.0 / s];
        for (a, e) in y.data().iter().zip(expect.iter()) {
            assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn depthwise_matches_grouped_naive() {
        // Depthwise conv == standard conv with a block-diagonal kernel.
        let x = Tensor::randn(vec![2, 3, 6, 6], 1.0, 21);
        let wd = Tensor::randn(vec![3, 1, 3, 3], 1.0, 22);
        let got = depthwise_conv2d(&x, &wd, None, 1, 1).unwrap();
        // Build the equivalent full kernel [3, 3, 3, 3] with zeros off the
        // channel diagonal.
        let mut full = vec![0.0f32; 3 * 3 * 3 * 3];
        for c in 0..3 {
            for k in 0..9 {
                full[((c * 3 + c) * 9) + k] = wd.data()[c * 9 + k];
            }
        }
        let wfull = Tensor::from_vec(vec![3, 3, 3, 3], full).unwrap();
        let want = conv2d(&x, &wfull, None, 1, 1).unwrap();
        assert!(got.approx_eq(&want, 1e-4));
    }

    #[test]
    fn depthwise_stride_and_bias() {
        let x = Tensor::ones(vec![1, 2, 4, 4]);
        let w = Tensor::ones(vec![2, 1, 2, 2]);
        let b = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let y = depthwise_conv2d(&x, &w, Some(&b), 2, 0).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
        assert!(y.data()[..4].iter().all(|&v| v == 4.5));
        assert!(y.data()[4..].iter().all(|&v| v == 3.5));
    }

    #[test]
    fn depthwise_rejects_bad_weight_layout() {
        let x = Tensor::zeros(vec![1, 3, 6, 6]);
        let w_wrong_c = Tensor::zeros(vec![2, 1, 3, 3]);
        assert!(depthwise_conv2d(&x, &w_wrong_c, None, 1, 1).is_err());
        let w_not_dw = Tensor::zeros(vec![3, 2, 3, 3]);
        assert!(depthwise_conv2d(&x, &w_not_dw, None, 1, 1).is_err());
    }

    #[test]
    fn batch_norm_rejects_wrong_param_len() {
        let x = Tensor::zeros(vec![1, 3, 2, 2]);
        let ok = Tensor::zeros(vec![3]);
        let bad = Tensor::zeros(vec![2]);
        assert!(batch_norm2d(&x, &bad, &ok, &ok, &ok, 1e-5).is_err());
    }

    /// The writing and in-place variants must be bit-identical to the
    /// allocating kernel — the tape planner swaps them in freely.
    #[test]
    fn batch_norm_variants_are_bit_identical() {
        let x = Tensor::randn(vec![2, 3, 4, 5], 1.3, 7);
        let gamma = Tensor::randn(vec![3], 0.5, 8);
        let beta = Tensor::randn(vec![3], 0.5, 9);
        let mean = Tensor::randn(vec![3], 0.5, 10);
        let var = Tensor::rand_uniform(vec![3], 0.1, 2.0, 11);
        let want = batch_norm2d(&x, &gamma, &beta, &mean, &var, 1e-5).unwrap();

        let mut out = vec![0.0f32; x.len()];
        batch_norm2d_into(&x, &gamma, &beta, &mean, &var, 1e-5, &mut out).unwrap();
        assert!(want
            .data()
            .iter()
            .zip(&out)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        let mut buf = x.data().to_vec();
        batch_norm2d_inplace(&mut buf, x.shape(), &gamma, &beta, &mean, &var, 1e-5).unwrap();
        assert!(want
            .data()
            .iter()
            .zip(&buf)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
