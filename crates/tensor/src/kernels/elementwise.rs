//! Elementwise kernels: activations and binary arithmetic.
//!
//! These are the operators the compiler's fusion pass folds into their
//! producers; standalone implementations are still needed for the unfused
//! framework baseline and for fusion-correctness tests.

use crate::{Tensor, TensorError};

/// The unary elementwise operators in the vocabulary.
///
/// Carried as data (rather than function pointers) so the compiler can
/// record *which* activation was fused into a producer kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Relu,
    Sigmoid,
    Tanh,
    Gelu,
}

impl UnaryOp {
    /// Apply the operator to a single element.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            UnaryOp::Relu => x.max(0.0),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Tanh => x.tanh(),
            // tanh-approximated GELU, the variant used by BERT-family models.
            UnaryOp::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
        }
    }

    /// Apply the operator across a whole tensor.
    pub fn eval(self, x: &Tensor) -> Tensor {
        let data: Vec<f32> = x.data().iter().map(|&v| self.apply(v)).collect();
        Tensor::from_vec(x.shape().clone(), data).expect("shape preserved")
    }
}

/// Apply a unary operator into a caller-provided buffer (same length).
pub fn unary_into(op: UnaryOp, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = op.apply(v);
    }
}

/// Apply a unary operator in place — the tape executor's epilogue path
/// when the input value dies at this instruction.
pub fn unary_inplace(op: UnaryOp, buf: &mut [f32]) {
    for v in buf.iter_mut() {
        *v = op.apply(*v);
    }
}

/// `out = x * s` into a caller-provided buffer.
pub fn scale_into(x: &[f32], s: f32, out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x.iter()) {
        *o = v * s;
    }
}

/// `buf *= s` in place.
pub fn scale_inplace(buf: &mut [f32], s: f32) {
    for v in buf.iter_mut() {
        *v *= s;
    }
}

/// `out = a + b` into a caller-provided buffer (equal lengths).
pub fn add_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x + y;
    }
}

/// `out = a - b` into a caller-provided buffer (equal lengths).
pub fn sub_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// `out = a * b` into a caller-provided buffer (equal lengths).
pub fn mul_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

/// `buf = buf ⊕ b` in place for add/sub/mul (first operand aliased).
pub fn add_inplace(buf: &mut [f32], b: &[f32]) {
    debug_assert_eq!(buf.len(), b.len());
    for (x, &y) in buf.iter_mut().zip(b.iter()) {
        *x += y;
    }
}

/// In-place elementwise subtraction (first operand aliased).
pub fn sub_inplace(buf: &mut [f32], b: &[f32]) {
    debug_assert_eq!(buf.len(), b.len());
    for (x, &y) in buf.iter_mut().zip(b.iter()) {
        *x -= y;
    }
}

/// In-place *reversed* subtraction: `buf = a - buf`. The tape executor's
/// epilogue path for a `Sub` whose chain value is the *second* operand
/// (the subtrahend lives in the accumulator buffer).
pub fn rsub_inplace(buf: &mut [f32], a: &[f32]) {
    debug_assert_eq!(buf.len(), a.len());
    for (x, &y) in buf.iter_mut().zip(a.iter()) {
        *x = y - *x;
    }
}

/// In-place elementwise multiplication (first operand aliased).
pub fn mul_inplace(buf: &mut [f32], b: &[f32]) {
    debug_assert_eq!(buf.len(), b.len());
    for (x, &y) in buf.iter_mut().zip(b.iter()) {
        *x *= y;
    }
}

/// `out = x + bias` (bias broadcast over the trailing dim) into a buffer.
pub fn bias_add_into(x: &[f32], bias: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    let c = bias.len();
    for (i, (o, &v)) in out.iter_mut().zip(x.iter()).enumerate() {
        *o = v + bias[i % c];
    }
}

/// `buf += bias` (broadcast over the trailing dim) in place.
pub fn bias_add_inplace(buf: &mut [f32], bias: &[f32]) {
    let c = bias.len();
    for (i, v) in buf.iter_mut().enumerate() {
        *v += bias[i % c];
    }
}

/// `max(x, 0)` elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    UnaryOp::Relu.eval(x)
}

/// Logistic sigmoid elementwise.
pub fn sigmoid(x: &Tensor) -> Tensor {
    UnaryOp::Sigmoid.eval(x)
}

/// Hyperbolic tangent elementwise.
pub fn tanh(x: &Tensor) -> Tensor {
    UnaryOp::Tanh.eval(x)
}

/// GELU (tanh approximation) elementwise.
pub fn gelu(x: &Tensor) -> Tensor {
    UnaryOp::Gelu.eval(x)
}

/// Multiply by a scalar.
pub fn scale(x: &Tensor, s: f32) -> Tensor {
    let data: Vec<f32> = x.data().iter().map(|&v| v * s).collect();
    Tensor::from_vec(x.shape().clone(), data).expect("shape preserved")
}

fn zip_op(
    op: &'static str,
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let data: Vec<f32> = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_vec(a.shape().clone(), data)
}

/// Elementwise addition (same shapes).
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_op("add", a, b, |x, y| x + y)
}

/// Elementwise subtraction (same shapes).
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_op("sub", a, b, |x, y| x - y)
}

/// Elementwise multiplication (same shapes).
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    zip_op("mul", a, b, |x, y| x * y)
}

/// Add a `[c]` bias to the trailing dimension of `x: [..., c]`.
pub fn bias_add(x: &Tensor, bias: &Tensor) -> Result<Tensor, TensorError> {
    bias.shape().expect_rank("bias_add", 1)?;
    let c = bias.len();
    if x.shape().rank() == 0 || x.shape().dim(x.shape().rank() - 1) != c {
        return Err(TensorError::ShapeMismatch {
            op: "bias_add",
            lhs: x.shape().dims().to_vec(),
            rhs: bias.shape().dims().to_vec(),
        });
    }
    let bd = bias.data();
    let data: Vec<f32> = x
        .data()
        .iter()
        .enumerate()
        .map(|(i, &v)| v + bd[i % c])
        .collect();
    Tensor::from_vec(x.shape().clone(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![4], vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        let x = Tensor::from_vec(vec![3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = sigmoid(&x);
        assert!(y.data()[0] < 1e-4);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn tanh_matches_std() {
        let x = Tensor::from_vec(vec![2], vec![0.3, -1.2]).unwrap();
        let y = tanh(&x);
        assert!((y.data()[0] - 0.3f32.tanh()).abs() < 1e-7);
        assert!((y.data()[1] - (-1.2f32).tanh()).abs() < 1e-7);
    }

    #[test]
    fn gelu_known_points() {
        let x = Tensor::from_vec(vec![3], vec![0.0, 1.0, -1.0]).unwrap();
        let y = gelu(&x);
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.8412).abs() < 1e-3);
        assert!((y.data()[2] + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn add_sub_mul_roundtrip() {
        let a = Tensor::randn(vec![8], 1.0, 1);
        let b = Tensor::randn(vec![8], 1.0, 2);
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert!(back.approx_eq(&a, 1e-6));
        let p = mul(&a, &b).unwrap();
        assert!((p.data()[0] - a.data()[0] * b.data()[0]).abs() < 1e-7);
    }

    #[test]
    fn binary_ops_reject_shape_mismatch() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![3, 2]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
    }

    #[test]
    fn bias_add_broadcasts_rows() {
        let x = Tensor::from_vec(vec![2, 3], vec![0., 0., 0., 1., 1., 1.]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let y = bias_add(&x, &b).unwrap();
        assert_eq!(y.data(), &[1., 2., 3., 2., 3., 4.]);
    }

    #[test]
    fn bias_add_rejects_wrong_channel() {
        let x = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4]);
        assert!(bias_add(&x, &b).is_err());
    }

    #[test]
    fn scale_multiplies() {
        let x = Tensor::ones(vec![3]);
        assert_eq!(scale(&x, 2.5).data(), &[2.5, 2.5, 2.5]);
    }
}
