//! General matrix multiplication: the workhorse kernel.
//!
//! The default engine is the register-tiled microkernel in [`super::micro`]
//! (exact contract: bit-identical to the naive triple loop — see the
//! module docs there). Setting reference mode (see [`super::reference`])
//! routes every entry point through the seed scalar kernels instead, which
//! is how the contract tests and the `duet-kernel-floor` gate get a
//! same-process before/after comparison.
//!
//! `linear` is dot-product shaped (`x @ w^T`), so it uses the lane-split
//! reduction with the **ulp-bounded** contract rather than the exact one:
//! a serial dot product is a single dependency chain that cannot
//! vectorize without reassociating.

use rayon::prelude::*;

use super::{micro, reference};
use crate::{Tensor, TensorError};

/// `C[m,n] = A[m,k] * B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    a.shape().expect_rank("matmul", 2)?;
    b.shape().expect_rank("matmul", 2)?;
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let (k2, n) = (b.shape().dim(0), b.shape().dim(1));
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm_into(a.data(), b.data(), &mut out, m, k, n);
    Tensor::from_vec(vec![m, n], out)
}

/// `matmul` into a caller-provided buffer (`out` is overwritten, len m*n).
///
/// Same kernel and per-element reduction order as [`matmul`], so the bytes
/// written are identical; the only difference is who owns the buffer. The
/// tiled engine writes every element, so there is no zero-fill pass here.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_into(a, b, out, m, k, n);
}

/// `linear` into a caller-provided buffer (`out` is overwritten, len m*nout).
///
/// `x: [m, kin]`, `w: [nout, kin]`, `bias: [nout]`. Shares the lane-split
/// dot kernel with [`linear`], so results are bit-identical between the
/// two entry points. Ulp-bounded contract versus the serial reference.
pub fn linear_into(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    kin: usize,
    nout: usize,
) {
    debug_assert_eq!(x.len(), m * kin);
    debug_assert_eq!(w.len(), kin * nout);
    debug_assert_eq!(out.len(), m * nout);
    if reference::reference_mode() {
        return reference::linear_into_ref(x, w, bias, out, m, kin, nout);
    }
    if m <= 1 {
        // Batch-1 inference: skip the parallel split (and the chunk list it
        // allocates) entirely — the hot path for the serve arena.
        if m == 1 {
            micro::linear_row(x, w, bias, out, kin);
        }
        return;
    }
    out.par_chunks_mut(nout)
        .enumerate()
        .for_each(|(i, orow)| micro::linear_row(&x[i * kin..(i + 1) * kin], w, bias, orow, kin));
}

/// Accumulating linear: `out[i,j] += x_i · w_j` (no bias). The LSTM/GRU
/// gate kernels use this to fold the hidden-state GEMM onto the input
/// GEMM's buffer without a separate gates tensor. Same lane-split dot and
/// ulp-bounded contract as [`linear_into`].
pub fn linear_acc_into(x: &[f32], w: &[f32], out: &mut [f32], m: usize, kin: usize, nout: usize) {
    debug_assert_eq!(x.len(), m * kin);
    debug_assert_eq!(w.len(), kin * nout);
    debug_assert_eq!(out.len(), m * nout);
    if reference::reference_mode() {
        return reference::linear_acc_into_ref(x, w, out, m, kin, nout);
    }
    for i in 0..m {
        micro::linear_row_acc(
            &x[i * kin..(i + 1) * kin],
            w,
            &mut out[i * nout..(i + 1) * nout],
            kin,
        );
    }
}

/// `y = x @ w^T + bias` where `x: [m, in]`, `w: [out, in]`, `bias: [out]`.
///
/// This is the fully-connected layer layout used by the model zoo (PyTorch
/// convention: weight stored `[out_features, in_features]`).
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("linear", 2)?;
    w.shape().expect_rank("linear", 2)?;
    let (m, kin) = (x.shape().dim(0), x.shape().dim(1));
    let (nout, kin2) = (w.shape().dim(0), w.shape().dim(1));
    if kin != kin2 {
        return Err(TensorError::ShapeMismatch {
            op: "linear",
            lhs: x.shape().dims().to_vec(),
            rhs: w.shape().dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != nout {
            return Err(TensorError::ShapeMismatch {
                op: "linear",
                lhs: vec![nout],
                rhs: b.shape().dims().to_vec(),
            });
        }
    }
    let mut out = vec![0.0f32; m * nout];
    // x @ w^T: each output row is a series of dot products over rows of w.
    linear_into(
        x.data(),
        w.data(),
        bias.map(Tensor::data),
        &mut out,
        m,
        kin,
        nout,
    );
    Tensor::from_vec(vec![m, nout], out)
}

/// Batched matmul: `A: [b, m, k]`, `B: [b, k, n]` → `[b, m, n]`.
pub fn batched_matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    a.shape().expect_rank("batched_matmul", 3)?;
    b.shape().expect_rank("batched_matmul", 3)?;
    let (ba, m, k) = (a.shape().dim(0), a.shape().dim(1), a.shape().dim(2));
    let (bb, k2, n) = (b.shape().dim(0), b.shape().dim(1), b.shape().dim(2));
    if ba != bb || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "batched_matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; ba * m * n];
    out.par_chunks_mut(m * n).enumerate().for_each(|(i, o)| {
        gemm_into(
            &ad[i * m * k..(i + 1) * m * k],
            &bd[i * k * n..(i + 1) * k * n],
            o,
            m,
            k,
            n,
        );
    });
    Tensor::from_vec(vec![ba, m, n], out)
}

/// GEMM into a preallocated output (`c` is overwritten, len m*n).
///
/// Dispatches to the register-tiled engine (writes every element; exact
/// contract) or, in reference mode, zero-fills and runs the seed
/// accumulate kernel — reproducing the seed bytes exactly.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if reference::reference_mode() {
        c.fill(0.0);
        reference::gemm_acc_ref(a, b, c, m, k, n);
        return;
    }
    micro::gemm_tiled(a, b, c, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape().dim(0), a.shape().dim(1));
        let n = b.shape().dim(1);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..k {
                    acc += a.data()[i * k + t] * b.data()[t * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(vec![m, n], out).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::randn(vec![5, 7], 1.0, 3);
        let i = Tensor::eye(7);
        let c = matmul(&a, &i).unwrap();
        assert!(c.approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_matches_naive_odd_sizes() {
        // Sizes straddle the block boundaries on purpose.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (33, 257, 17), (64, 16, 31)] {
            let a = Tensor::randn(vec![m, k], 1.0, m as u64);
            let b = Tensor::randn(vec![k, n], 1.0, n as u64);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b);
            assert!(fast.approx_eq(&slow, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_exact_against_naive_bits() {
        // The tiled engine's contract is exact identity, not approx.
        for &(m, k, n) in &[(3, 5, 2), (33, 64, 17), (8, 128, 48)] {
            let a = Tensor::randn(vec![m, k], 1.0, (m + n) as u64);
            let b = Tensor::randn(vec![k, n], 1.0, (k + 1) as u64);
            let fast = matmul(&a, &b).unwrap();
            let slow = naive_matmul(&a, &b);
            assert!(
                fast.data()
                    .iter()
                    .zip(slow.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "bit mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![4, 5]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(vec![3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn linear_matches_matmul_transpose() {
        let x = Tensor::randn(vec![4, 8], 1.0, 1);
        let w = Tensor::randn(vec![6, 8], 1.0, 2);
        let b = Tensor::randn(vec![6], 1.0, 3);
        let y = linear(&x, &w, Some(&b)).unwrap();
        // Reference: x @ w^T + b.
        let wt = crate::kernels::transpose2d(&w).unwrap();
        let ref_y = matmul(&x, &wt).unwrap();
        for i in 0..4 {
            for j in 0..6 {
                let expect = ref_y.data()[i * 6 + j] + b.data()[j];
                assert!((y.data()[i * 6 + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn linear_without_bias() {
        let x = Tensor::ones(vec![1, 3]);
        let w = Tensor::ones(vec![2, 3]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.data(), &[3.0, 3.0]);
    }

    #[test]
    fn linear_rejects_bad_bias() {
        let x = Tensor::zeros(vec![1, 3]);
        let w = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![5]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn linear_acc_adds_onto_existing() {
        let x = Tensor::ones(vec![2, 3]);
        let w = Tensor::ones(vec![4, 3]);
        let mut out = vec![10.0f32; 8];
        linear_acc_into(x.data(), w.data(), &mut out, 2, 3, 4);
        assert!(out.iter().all(|&v| v == 13.0));
    }

    #[test]
    fn batched_matmul_matches_per_batch() {
        let a = Tensor::randn(vec![3, 4, 5], 1.0, 10);
        let b = Tensor::randn(vec![3, 5, 2], 1.0, 11);
        let c = batched_matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[3, 4, 2]);
        for i in 0..3 {
            let ai = Tensor::from_vec(vec![4, 5], a.data()[i * 20..(i + 1) * 20].to_vec()).unwrap();
            let bi = Tensor::from_vec(vec![5, 2], b.data()[i * 10..(i + 1) * 10].to_vec()).unwrap();
            let ci = matmul(&ai, &bi).unwrap();
            assert_eq!(&c.data()[i * 8..(i + 1) * 8], ci.data());
        }
    }

    #[test]
    fn batched_matmul_rejects_batch_mismatch() {
        let a = Tensor::zeros(vec![2, 3, 4]);
        let b = Tensor::zeros(vec![3, 4, 5]);
        assert!(batched_matmul(&a, &b).is_err());
    }

    #[test]
    fn gemm_deterministic_across_runs() {
        let a = Tensor::randn(vec![65, 130], 1.0, 5);
        let b = Tensor::randn(vec![130, 33], 1.0, 6);
        let c1 = matmul(&a, &b).unwrap();
        let c2 = matmul(&a, &b).unwrap();
        assert_eq!(c1, c2);
    }
}
