//! Structural kernels: transpose, concat/split, embedding lookup, reductions.

use crate::{Shape, Tensor, TensorError};

/// Transpose a rank-2 tensor.
pub fn transpose2d(x: &Tensor) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("transpose2d", 2)?;
    let (m, n) = (x.shape().dim(0), x.shape().dim(1));
    let xd = x.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = xd[i * n + j];
        }
    }
    Tensor::from_vec(vec![n, m], out)
}

/// Concatenate tensors along `axis`. All other dimensions must match.
pub fn concat(tensors: &[&Tensor], axis: usize) -> Result<Tensor, TensorError> {
    let first = tensors
        .first()
        .ok_or_else(|| TensorError::InvalidArgument {
            op: "concat",
            msg: "need at least one input".into(),
        })?;
    first.shape().check_axis("concat", axis)?;
    let rank = first.shape().rank();
    let mut out_dims = first.shape().dims().to_vec();
    out_dims[axis] = 0;
    for t in tensors {
        t.shape().expect_rank("concat", rank)?;
        for (d, (&a, &b)) in t
            .shape()
            .dims()
            .iter()
            .zip(first.shape().dims())
            .enumerate()
        {
            if d != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.shape().dims().to_vec(),
                    rhs: t.shape().dims().to_vec(),
                });
            }
        }
        out_dims[axis] += t.shape().dim(axis);
    }
    // outer = product of dims before axis; inner = product after.
    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let mut out = Vec::with_capacity(out_dims.iter().product());
    for o in 0..outer {
        for t in tensors {
            let ax = t.shape().dim(axis);
            let chunk = ax * inner;
            out.extend_from_slice(&t.data()[o * chunk..(o + 1) * chunk]);
        }
    }
    Tensor::from_vec(out_dims, out)
}

/// Split a tensor into equal `parts` along `axis`.
pub fn split(x: &Tensor, parts: usize, axis: usize) -> Result<Vec<Tensor>, TensorError> {
    x.shape().check_axis("split", axis)?;
    if parts == 0 || !x.shape().dim(axis).is_multiple_of(parts) {
        return Err(TensorError::InvalidArgument {
            op: "split",
            msg: format!(
                "cannot split extent {} into {parts} parts",
                x.shape().dim(axis)
            ),
        });
    }
    let step = x.shape().dim(axis) / parts;
    let outer: usize = x.shape().dims()[..axis].iter().product();
    let inner: usize = x.shape().dims()[axis + 1..].iter().product();
    let mut out_dims = x.shape().dims().to_vec();
    out_dims[axis] = step;
    let mut results = Vec::with_capacity(parts);
    for p in 0..parts {
        let mut data = Vec::with_capacity(outer * step * inner);
        for o in 0..outer {
            let base = o * x.shape().dim(axis) * inner + p * step * inner;
            data.extend_from_slice(&x.data()[base..base + step * inner]);
        }
        results.push(Tensor::from_vec(out_dims.clone(), data)?);
    }
    Ok(results)
}

/// Take rows `[start, end)` from a rank-2 tensor.
pub fn slice_rows(x: &Tensor, start: usize, end: usize) -> Result<Tensor, TensorError> {
    x.shape().expect_rank("slice_rows", 2)?;
    let (m, n) = (x.shape().dim(0), x.shape().dim(1));
    if start > end || end > m {
        return Err(TensorError::InvalidArgument {
            op: "slice_rows",
            msg: format!("range {start}..{end} out of bounds for {m} rows"),
        });
    }
    Tensor::from_vec(vec![end - start, n], x.data()[start * n..end * n].to_vec())
}

/// Embedding lookup: `table: [vocab, dim]`, `ids` are rounded to usize.
/// Input `ids: [n]` (f32 holding integral values) → `[n, dim]`.
pub fn embedding(table: &Tensor, ids: &Tensor) -> Result<Tensor, TensorError> {
    table.shape().expect_rank("embedding", 2)?;
    let (vocab, dim) = (table.shape().dim(0), table.shape().dim(1));
    let n = ids.len();
    let mut out = Vec::with_capacity(n * dim);
    for &id in ids.data() {
        let idx = id as usize;
        if id < 0.0 || idx >= vocab {
            return Err(TensorError::InvalidArgument {
                op: "embedding",
                msg: format!("id {id} out of range for vocab {vocab}"),
            });
        }
        out.extend_from_slice(&table.data()[idx * dim..(idx + 1) * dim]);
    }
    Tensor::from_vec(vec![n, dim], out)
}

fn reduce_rows(
    op: &'static str,
    x: &Tensor,
    init: f32,
    f: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Result<Tensor, TensorError> {
    let rank = x.shape().rank();
    if rank == 0 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 1,
            actual: 0,
        });
    }
    let c = x.shape().dim(rank - 1);
    if c == 0 {
        return Err(TensorError::InvalidArgument {
            op,
            msg: "empty trailing dim".into(),
        });
    }
    let rows = x.len() / c;
    let mut out = Vec::with_capacity(rows);
    for row in x.data().chunks(c) {
        let acc = row.iter().fold(init, |a, &v| f(a, v));
        out.push(finish(acc, c));
    }
    let dims: Vec<usize> = x.shape().dims()[..rank - 1].to_vec();
    Tensor::from_vec(Shape::new(dims), out)
}

/// Sum over the trailing dimension.
pub fn reduce_sum(x: &Tensor) -> Result<Tensor, TensorError> {
    reduce_rows("reduce_sum", x, 0.0, |a, v| a + v, |a, _| a)
}

/// Mean over the trailing dimension.
pub fn reduce_mean(x: &Tensor) -> Result<Tensor, TensorError> {
    reduce_rows("reduce_mean", x, 0.0, |a, v| a + v, |a, n| a / n as f32)
}

/// Max over the trailing dimension.
pub fn reduce_max(x: &Tensor) -> Result<Tensor, TensorError> {
    reduce_rows("reduce_max", x, f32::NEG_INFINITY, f32::max, |a, _| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_involution() {
        let x = Tensor::randn(vec![3, 5], 1.0, 1);
        let tt = transpose2d(&transpose2d(&x).unwrap()).unwrap();
        assert_eq!(tt, x);
    }

    #[test]
    fn transpose_moves_elements() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = transpose2d(&x).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::from_vec(vec![1, 2], vec![1., 2.]).unwrap();
        let b = Tensor::from_vec(vec![1, 2], vec![3., 4.]).unwrap();
        let c0 = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c0.shape().dims(), &[2, 2]);
        assert_eq!(c0.data(), &[1., 2., 3., 4.]);
        let c1 = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c1.shape().dims(), &[1, 4]);
        assert_eq!(c1.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn concat_rejects_mismatched_other_dims() {
        let a = Tensor::zeros(vec![1, 2]);
        let b = Tensor::zeros(vec![1, 3]);
        assert!(concat(&[&a, &b], 0).is_err());
        assert!(concat(&[], 0).is_err());
    }

    #[test]
    fn split_is_inverse_of_concat() {
        let x = Tensor::randn(vec![4, 6], 1.0, 2);
        let parts = split(&x, 3, 1).unwrap();
        assert_eq!(parts.len(), 3);
        let refs: Vec<&Tensor> = parts.iter().collect();
        let back = concat(&refs, 1).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn split_rejects_uneven() {
        let x = Tensor::zeros(vec![4, 5]);
        assert!(split(&x, 3, 1).is_err());
        assert!(split(&x, 0, 0).is_err());
    }

    #[test]
    fn slice_rows_extracts_range() {
        let x = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let s = slice_rows(&x, 1, 3).unwrap();
        assert_eq!(s.data(), &[3., 4., 5., 6.]);
        assert!(slice_rows(&x, 2, 4).is_err());
        assert!(slice_rows(&x, 2, 1).is_err());
    }

    #[test]
    fn embedding_looks_up_rows() {
        let table = Tensor::from_vec(vec![3, 2], vec![0., 0., 10., 11., 20., 21.]).unwrap();
        let ids = Tensor::from_vec(vec![3], vec![2., 0., 1.]).unwrap();
        let e = embedding(&table, &ids).unwrap();
        assert_eq!(e.data(), &[20., 21., 0., 0., 10., 11.]);
    }

    #[test]
    fn embedding_rejects_out_of_vocab() {
        let table = Tensor::zeros(vec![3, 2]);
        let ids = Tensor::from_vec(vec![1], vec![3.0]).unwrap();
        assert!(embedding(&table, &ids).is_err());
        let neg = Tensor::from_vec(vec![1], vec![-1.0]).unwrap();
        assert!(embedding(&table, &neg).is_err());
    }

    #[test]
    fn reductions_over_trailing_dim() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 5., 0.]).unwrap();
        assert_eq!(reduce_sum(&x).unwrap().data(), &[6.0, 4.0]);
        assert_eq!(reduce_mean(&x).unwrap().data(), &[2.0, 4.0 / 3.0]);
        assert_eq!(reduce_max(&x).unwrap().data(), &[3.0, 5.0]);
    }

    #[test]
    fn reduce_scalar_rejected() {
        assert!(reduce_sum(&Tensor::scalar(1.0)).is_err());
    }
}
