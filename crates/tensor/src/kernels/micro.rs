//! Lane-chunked microkernels: the vector engine under every heavy kernel.
//!
//! Everything here is stable Rust: fixed-width `[f32; LANES]` accumulator
//! arrays and `chunks_exact` walks that LLVM auto-vectorizes (the same idiom
//! `duet-ir`'s abstract interpreter proves out in `absint.rs`). No
//! `std::simd`, no intrinsics, no `unsafe`.
//!
//! # Reduction-order contracts
//!
//! Every kernel documents one of two numeric contracts, and the test suite
//! in `crates/tensor/tests/kernel_contract.rs` enforces them:
//!
//! * **Exact (`to_bits` identity).** The kernel performs each output
//!   element's reduction as a single scalar accumulation chain in a fixed
//!   (k-ascending) order, so the result is bit-identical to the naive loop
//!   no matter how the kernel tiles rows/columns or how many threads run.
//!   [`gemm_tiled`] is exact: register tiling changes *which* elements are
//!   computed together, never the order of any one element's sum. Rust
//!   never contracts `mul`+`add` into FMA, so this holds on every ISA.
//! * **Ulp-bounded.** The kernel splits the k-reduction across `LANES`
//!   independent partial sums (that's what makes a dot product
//!   vectorizable), which reassociates the sum. [`dot_lanes`] and friends
//!   carry this contract: results differ from the serial reference by a
//!   bounded number of ulp (property-tested ≤ 4 ulp for the distributions
//!   the zoo produces), and are still fully deterministic — the lane
//!   structure is fixed, so the same inputs give the same bits on every
//!   run, ISA and thread count.

/// Number of parallel f32 accumulator lanes for lane-split reductions.
/// Eight f32 lanes fill one AVX2 register and half an AVX-512 register;
/// on narrower ISAs LLVM legalizes the same code to multiple registers
/// with identical results.
pub const LANES: usize = 8;

/// Rows per register tile in [`gemm_tiled`].
pub const MR: usize = 4;
/// Columns per register tile in [`gemm_tiled`] (one AVX-512 f32 vector,
/// two AVX2 vectors).
pub const NR: usize = 16;

/// Rows per parallel work unit for the row-split GEMM drivers.
pub(crate) const ROW_BLOCK: usize = 32;

/// Fixed lane-combination order shared by every lane-split reduction:
/// pairwise tree `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
pub fn reduce_lanes(acc: &[f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Lane-split dot product. **Ulp-bounded contract** (reassociates the
/// k-sum into [`LANES`] partial sums, combined via [`reduce_lanes`], plus
/// a serial tail for `len % LANES` trailing elements).
#[inline]
pub fn dot_lanes(x: &[f32], w: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), w.len());
    let mut acc = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let wc = w.chunks_exact(LANES);
    let xr = xc.remainder();
    let wr = wc.remainder();
    for (xv, wv) in xc.zip(wc) {
        for l in 0..LANES {
            acc[l] += xv[l] * wv[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, wv) in xr.iter().zip(wr.iter()) {
        tail += xv * wv;
    }
    reduce_lanes(&acc) + tail
}

/// Four lane-split dot products sharing one pass over `x`.
///
/// Each row's bits are **identical to [`dot_lanes`]** on the same pair of
/// slices — the accumulation order per row does not depend on the 4-row
/// tiling — so callers may mix the tiled and single-row paths freely.
#[inline]
pub fn dot_lanes_x4(x: &[f32], w0: &[f32], w1: &[f32], w2: &[f32], w3: &[f32]) -> [f32; 4] {
    let n = x.len();
    debug_assert!(w0.len() == n && w1.len() == n && w2.len() == n && w3.len() == n);
    let mut acc = [[0.0f32; LANES]; 4];
    let split = n - n % LANES;
    let mut t = 0;
    while t < split {
        let xv = <&[f32; LANES]>::try_from(&x[t..t + LANES]).unwrap();
        let w0v = <&[f32; LANES]>::try_from(&w0[t..t + LANES]).unwrap();
        let w1v = <&[f32; LANES]>::try_from(&w1[t..t + LANES]).unwrap();
        let w2v = <&[f32; LANES]>::try_from(&w2[t..t + LANES]).unwrap();
        let w3v = <&[f32; LANES]>::try_from(&w3[t..t + LANES]).unwrap();
        for l in 0..LANES {
            acc[0][l] += xv[l] * w0v[l];
            acc[1][l] += xv[l] * w1v[l];
            acc[2][l] += xv[l] * w2v[l];
            acc[3][l] += xv[l] * w3v[l];
        }
        t += LANES;
    }
    let mut tail = [0.0f32; 4];
    for i in split..n {
        tail[0] += x[i] * w0[i];
        tail[1] += x[i] * w1[i];
        tail[2] += x[i] * w2[i];
        tail[3] += x[i] * w3[i];
    }
    [
        reduce_lanes(&acc[0]) + tail[0],
        reduce_lanes(&acc[1]) + tail[1],
        reduce_lanes(&acc[2]) + tail[2],
        reduce_lanes(&acc[3]) + tail[3],
    ]
}

/// One output row of a fully-connected layer: `orow[j] = xrow · w[j] (+ b[j])`.
///
/// Walks `w` rows in 4-row tiles (sharing each `xrow` load across rows)
/// with a single-row tail; every dot carries the [`dot_lanes`] ulp-bounded
/// contract. The bias branch is hoisted out of the loop entirely: dots are
/// written first, then bias is added in one vector pass (`acc + b[j]` — the
/// same single rounding the fused form would produce).
#[inline]
pub fn linear_row(xrow: &[f32], w: &[f32], bias: Option<&[f32]>, orow: &mut [f32], kin: usize) {
    let nout = orow.len();
    debug_assert_eq!(w.len(), nout * kin);
    let mut j = 0;
    while j + 4 <= nout {
        let d = dot_lanes_x4(
            xrow,
            &w[j * kin..(j + 1) * kin],
            &w[(j + 1) * kin..(j + 2) * kin],
            &w[(j + 2) * kin..(j + 3) * kin],
            &w[(j + 3) * kin..(j + 4) * kin],
        );
        orow[j..j + 4].copy_from_slice(&d);
        j += 4;
    }
    while j < nout {
        orow[j] = dot_lanes(xrow, &w[j * kin..(j + 1) * kin]);
        j += 1;
    }
    if let Some(b) = bias {
        for (o, bv) in orow.iter_mut().zip(b.iter()) {
            *o += bv;
        }
    }
}

/// Accumulating variant of [`linear_row`]: `orow[j] += xrow · w[j]`.
/// Same lane structure, same ulp-bounded contract per dot.
#[inline]
pub fn linear_row_acc(xrow: &[f32], w: &[f32], orow: &mut [f32], kin: usize) {
    let nout = orow.len();
    debug_assert_eq!(w.len(), nout * kin);
    let mut j = 0;
    while j + 4 <= nout {
        let d = dot_lanes_x4(
            xrow,
            &w[j * kin..(j + 1) * kin],
            &w[(j + 1) * kin..(j + 2) * kin],
            &w[(j + 2) * kin..(j + 3) * kin],
            &w[(j + 3) * kin..(j + 4) * kin],
        );
        for (o, dv) in orow[j..j + 4].iter_mut().zip(d.iter()) {
            *o += dv;
        }
        j += 4;
    }
    while j < nout {
        orow[j] += dot_lanes(xrow, &w[j * kin..(j + 1) * kin]);
        j += 1;
    }
}

/// Register-tiled GEMM: `c = a @ b` (every element of `c` is written).
///
/// **Exact contract**: each `c[i][j]` is one scalar accumulation chain in
/// strictly k-ascending order — bit-identical to the naive triple loop for
/// every tile shape, row split and thread count. The tiling only decides
/// which [`MR`]×[`NR`] block of independent chains advances together, so
/// the per-element order never changes; what it buys is keeping those
/// MR×NR accumulators in vector registers across the whole k loop instead
/// of streaming the C row through memory k times.
pub fn gemm_tiled(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    use rayon::prelude::*;
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if n == 0 || m == 0 {
        return;
    }
    if m <= ROW_BLOCK {
        gemm_rows(a, b, c, 0, m, k, n);
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, cblk)| {
            let i0 = blk * ROW_BLOCK;
            let rows = cblk.len() / n;
            gemm_rows(a, b, cblk, i0, rows, k, n);
        });
}

/// Rows `[i0, i0+rows)` of the tiled GEMM into `cblk` (a `rows`×`n` view).
/// Column tiles run outermost so one k×NR panel of B is reused by every
/// row tile in the block.
fn gemm_rows(a: &[f32], b: &[f32], cblk: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    let mut j0 = 0;
    while j0 + NR <= n {
        tile_col::<NR>(a, b, cblk, i0, rows, j0, k, n);
        j0 += NR;
    }
    // Cascaded column tails: 8- then 4-wide tiles, then scalar chains for
    // the last < 4 columns. Per-element order is k-ascending throughout,
    // so the exact contract is preserved at every width.
    if j0 + 8 <= n {
        tile_col::<8>(a, b, cblk, i0, rows, j0, k, n);
        j0 += 8;
    }
    if j0 + 4 <= n {
        tile_col::<4>(a, b, cblk, i0, rows, j0, k, n);
        j0 += 4;
    }
    if j0 < n {
        for di in 0..rows {
            let arow = &a[(i0 + di) * k..(i0 + di + 1) * k];
            for j in j0..n {
                let mut acc = 0.0f32;
                for (t, av) in arow.iter().enumerate() {
                    acc += av * b[t * n + j];
                }
                cblk[di * n + j] = acc;
            }
        }
    }
}

/// One `NC`-wide column strip: walks the row dimension in [`MR`]-row tiles.
#[allow(clippy::too_many_arguments)]
fn tile_col<const NC: usize>(
    a: &[f32],
    b: &[f32],
    cblk: &mut [f32],
    i0: usize,
    rows: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut di = 0;
    while di < rows {
        match rows - di {
            1 => tile::<1, NC>(a, b, cblk, i0, di, j0, k, n),
            2 => tile::<2, NC>(a, b, cblk, i0, di, j0, k, n),
            3 => tile::<3, NC>(a, b, cblk, i0, di, j0, k, n),
            _ => tile::<4, NC>(a, b, cblk, i0, di, j0, k, n),
        }
        di += (rows - di).min(MR);
    }
}

/// One `R`×`NC` register tile: R rows of A against an NC-wide panel of B,
/// accumulators held in `[[f32; NC]; R]` for the entire k loop, then stored.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile<const R: usize, const NC: usize>(
    a: &[f32],
    b: &[f32],
    cblk: &mut [f32],
    i0: usize,
    di0: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut arows = [&a[..0]; R];
    for (r, arow) in arows.iter_mut().enumerate() {
        let row = i0 + di0 + r;
        *arow = &a[row * k..(row + 1) * k];
    }
    let mut acc = [[0.0f32; NC]; R];
    for t in 0..k {
        let bv = <&[f32; NC]>::try_from(&b[t * n + j0..t * n + j0 + NC]).unwrap();
        for r in 0..R {
            let av = arows[r][t];
            for l in 0..NC {
                acc[r][l] += av * bv[l];
            }
        }
    }
    for (r, accrow) in acc.iter().enumerate() {
        let row = (di0 + r) * n + j0;
        cblk[row..row + NC].copy_from_slice(accrow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_dot(x: &[f32], w: &[f32]) -> f64 {
        x.iter()
            .zip(w)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum()
    }

    #[test]
    fn dot_lanes_x4_matches_single_row_bits() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.37).sin()).collect();
        let ws: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..37).map(|i| ((i + r * 7) as f32 * 0.11).cos()).collect())
            .collect();
        let tiled = dot_lanes_x4(&x, &ws[0], &ws[1], &ws[2], &ws[3]);
        for r in 0..4 {
            assert_eq!(tiled[r].to_bits(), dot_lanes(&x, &ws[r]).to_bits());
        }
    }

    #[test]
    fn dot_lanes_close_to_f64_reference() {
        let x: Vec<f32> = (0..100).map(|i| (i as f32 * 0.71).sin()).collect();
        let w: Vec<f32> = (0..100).map(|i| (i as f32 * 0.13).cos()).collect();
        let got = dot_lanes(&x, &w) as f64;
        let want = serial_dot(&x, &w);
        assert!((got - want).abs() < 1e-3, "{got} vs {want}");
    }

    #[test]
    fn gemm_tiled_bit_identical_to_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (7, 33, 17), (40, 64, 50), (4, 16, 16)] {
            let a: Vec<f32> = (0..m * k)
                .map(|i| ((i * 37 % 97) as f32 - 48.0) / 7.0)
                .collect();
            let b: Vec<f32> = (0..k * n)
                .map(|i| ((i * 53 % 89) as f32 - 44.0) / 9.0)
                .collect();
            let mut c = vec![f32::NAN; m * n];
            gemm_tiled(&a, &b, &mut c, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for t in 0..k {
                        acc += a[i * k + t] * b[t * n + j];
                    }
                    assert_eq!(
                        c[i * n + j].to_bits(),
                        acc.to_bits(),
                        "({m},{k},{n}) at ({i},{j})"
                    );
                }
            }
        }
    }
}
