//! Real CPU kernels for every operator in the DUET operator vocabulary.
//!
//! Each kernel validates shapes, allocates its output once, and writes it
//! with no interior allocation. Heavy kernels (GEMM, conv) are parallelised
//! with rayon over independent output rows, which keeps results bit-exact
//! regardless of thread count (each output element is produced by exactly
//! one reduction performed in a fixed order).

mod attention;
mod conv;
mod elementwise;
mod gemm;
mod linalg;
mod norm;
mod rnn;
mod util;

pub use attention::{multi_head_attention, scaled_dot_attention};
pub use conv::{avg_pool2d, batch_norm2d, conv2d, depthwise_conv2d, global_avg_pool2d, max_pool2d};
pub use elementwise::{add, bias_add, gelu, mul, relu, scale, sigmoid, sub, tanh, UnaryOp};
pub use gemm::{batched_matmul, linear, matmul};
pub use linalg::{
    concat, embedding, reduce_max, reduce_mean, reduce_sum, slice_rows, split, transpose2d,
};
pub use norm::{layer_norm, log_softmax, softmax};
pub use rnn::{gru_step, lstm, lstm_step, LstmState};
pub use util::{argmax, cosine_similarity, one_hot, topk};
