//! Real CPU kernels for every operator in the DUET operator vocabulary.
//!
//! Each kernel validates shapes, allocates its output once, and writes it
//! with no interior allocation. Heavy kernels (GEMM, conv) are parallelised
//! with rayon over independent output rows, which keeps results bit-exact
//! regardless of thread count (each output element is produced by exactly
//! one reduction performed in a fixed order).
//!
//! The arithmetic engine lives in [`micro`]: lane-chunked, register-tiled
//! microkernels with documented reduction-order contracts (exact `to_bits`
//! identity where reassociation-free, ulp-bounded where the k-reduction is
//! lane-split). [`set_reference_mode`] routes the heavy kernels through the
//! seed scalar implementations instead — the oracle for contract tests and
//! the baseline for the `duet-kernel-floor` CI gate.

mod attention;
mod conv;
mod elementwise;
mod gemm;
mod linalg;
pub mod micro;
mod norm;
mod reference;
mod rnn;
mod util;

pub use attention::{multi_head_attention, scaled_dot_attention};
pub use conv::{
    avg_pool2d, batch_norm2d, batch_norm2d_inplace, batch_norm2d_into, conv2d, conv2d_into,
    depthwise_conv2d, global_avg_pool2d, max_pool2d,
};
pub use elementwise::{
    add, add_inplace, add_into, bias_add, bias_add_inplace, bias_add_into, gelu, mul, mul_inplace,
    mul_into, relu, rsub_inplace, scale, scale_inplace, scale_into, sigmoid, sub, sub_inplace,
    sub_into, tanh, unary_inplace, unary_into, UnaryOp,
};
pub use gemm::{batched_matmul, linear, linear_acc_into, linear_into, matmul, matmul_into};
pub use linalg::{
    concat, embedding, reduce_max, reduce_mean, reduce_sum, slice_rows, split, transpose2d,
};
pub use norm::{layer_norm, log_softmax, softmax};
pub use reference::{reference_mode, set_reference_mode};
pub use rnn::{gru_step, lstm, lstm_step, LstmState};
pub use util::{argmax, cosine_similarity, one_hot, topk};
