//! Normalisation kernels: softmax, log-softmax, layer norm.

use crate::{Tensor, TensorError};

/// Numerically-stable softmax over the trailing dimension.
pub fn softmax(x: &Tensor) -> Result<Tensor, TensorError> {
    row_softmax(x, false)
}

/// Numerically-stable log-softmax over the trailing dimension.
pub fn log_softmax(x: &Tensor) -> Result<Tensor, TensorError> {
    row_softmax(x, true)
}

fn row_softmax(x: &Tensor, log: bool) -> Result<Tensor, TensorError> {
    let rank = x.shape().rank();
    if rank == 0 {
        return Err(TensorError::RankMismatch {
            op: "softmax",
            expected: 1,
            actual: 0,
        });
    }
    let c = x.shape().dim(rank - 1);
    if c == 0 {
        return Err(TensorError::InvalidArgument {
            op: "softmax",
            msg: "trailing dimension must be non-empty".into(),
        });
    }
    let mut out = vec![0.0f32; x.len()];
    for (row_in, row_out) in x.data().chunks(c).zip(out.chunks_mut(c)) {
        let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &v) in row_out.iter_mut().zip(row_in.iter()) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        if log {
            let lsum = sum.ln();
            for (o, &v) in row_out.iter_mut().zip(row_in.iter()) {
                *o = v - max - lsum;
            }
        } else {
            let inv = 1.0 / sum;
            for o in row_out.iter_mut() {
                *o *= inv;
            }
        }
    }
    Tensor::from_vec(x.shape().clone(), out)
}

/// Layer normalisation over the trailing dimension with learned affine
/// parameters `gamma`, `beta` (both `[c]`).
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<Tensor, TensorError> {
    let rank = x.shape().rank();
    if rank == 0 {
        return Err(TensorError::RankMismatch {
            op: "layer_norm",
            expected: 1,
            actual: 0,
        });
    }
    let c = x.shape().dim(rank - 1);
    gamma.shape().expect_rank("layer_norm", 1)?;
    beta.shape().expect_rank("layer_norm", 1)?;
    if gamma.len() != c || beta.len() != c {
        return Err(TensorError::ShapeMismatch {
            op: "layer_norm",
            lhs: x.shape().dims().to_vec(),
            rhs: gamma.shape().dims().to_vec(),
        });
    }
    let g = gamma.data();
    let b = beta.data();
    let mut out = vec![0.0f32; x.len()];
    for (row_in, row_out) in x.data().chunks(c).zip(out.chunks_mut(c)) {
        let mean = row_in.iter().sum::<f32>() / c as f32;
        let var = row_in.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / c as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (j, (o, &v)) in row_out.iter_mut().zip(row_in.iter()).enumerate() {
            *o = (v - mean) * inv * g[j] + b[j];
        }
    }
    Tensor::from_vec(x.shape().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::randn(vec![4, 7], 2.0, 11);
        let y = softmax(&x).unwrap();
        for row in y.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let shifted = Tensor::from_vec(vec![3], vec![101.0, 102.0, 103.0]).unwrap();
        let a = softmax(&x).unwrap();
        let b = softmax(&shifted).unwrap();
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn softmax_handles_large_values() {
        let x = Tensor::from_vec(vec![2], vec![1000.0, 1000.0]).unwrap();
        let y = softmax(&x).unwrap();
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = Tensor::randn(vec![2, 5], 1.0, 3);
        let ls = log_softmax(&x).unwrap();
        let s = softmax(&x).unwrap();
        for (a, b) in ls.data().iter().zip(s.data().iter()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rejects_scalar_and_empty_rows() {
        assert!(softmax(&Tensor::scalar(1.0)).is_err());
        assert!(softmax(&Tensor::zeros(vec![2, 0])).is_err());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::randn(vec![3, 64], 5.0, 17);
        let g = Tensor::ones(vec![64]);
        let b = Tensor::zeros(vec![64]);
        let y = layer_norm(&x, &g, &b, 1e-5).unwrap();
        for row in y.data().chunks(64) {
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn layer_norm_affine_applies() {
        let x = Tensor::randn(vec![2, 8], 1.0, 4);
        let g = Tensor::full(vec![8], 2.0);
        let b = Tensor::full(vec![8], 0.5);
        let plain = layer_norm(&x, &Tensor::ones(vec![8]), &Tensor::zeros(vec![8]), 1e-5).unwrap();
        let affine = layer_norm(&x, &g, &b, 1e-5).unwrap();
        for (p, a) in plain.data().iter().zip(affine.data().iter()) {
            assert!((a - (p * 2.0 + 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_rejects_bad_params() {
        let x = Tensor::zeros(vec![2, 8]);
        let g = Tensor::zeros(vec![4]);
        let b = Tensor::zeros(vec![8]);
        assert!(layer_norm(&x, &g, &b, 1e-5).is_err());
    }
}
