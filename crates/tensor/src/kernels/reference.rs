//! Reference (pre-vectorization) kernels and the global reference-mode
//! switch.
//!
//! These are the seed implementations of the heavy kernels, kept verbatim:
//! the cache-blocked zero-skipping accumulate GEMM and the serial
//! one-chain-per-output linear. They serve two roles:
//!
//! 1. **Numeric oracle.** The ulp-bounded contract of the lane-split
//!    kernels (see `micro.rs`) is stated *against these*: the contract
//!    tests compare vectorized output to reference-mode output.
//! 2. **Before/after measurement.** `duet-bench`'s kernel-speed experiment
//!    and the `duet-kernel-floor` CI gate flip [`set_reference_mode`]
//!    between alternating trials inside one process, so the speedup they
//!    record compares the two engines under identical build flags, cache
//!    state and scheduler conditions.
//!
//! The switch is process-global and intended for benchmarks and tests
//! only; the serving path never touches it.

use std::sync::atomic::{AtomicBool, Ordering};

use rayon::prelude::*;

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Route the heavy kernels (GEMM, linear, depthwise conv, LSTM) through the
/// seed scalar implementations (`true`) or the vectorized engine (`false`,
/// the default).
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.store(on, Ordering::SeqCst);
}

/// Whether reference mode is currently active.
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Tile height for the parallel row split (seed value).
const ROW_BLOCK: usize = 32;
/// K-blocking factor (seed value).
const K_BLOCK: usize = 256;

/// Seed blocked GEMM, accumulating into `c` (`c` must be pre-zeroed).
/// i-k-j loop order with an axpy inner loop straight through memory.
pub(crate) fn gemm_acc_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m <= ROW_BLOCK {
        gemm_block(a, b, c, 0, m, k, n);
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, cblk)| {
            let i0 = blk * ROW_BLOCK;
            let rows = cblk.len() / n.max(1);
            gemm_block(a, b, cblk, i0, rows, k, n);
        });
}

/// One ROW_BLOCK-tall tile of the seed GEMM: rows `[i0, i0+rows)` of A
/// into `cblk`, k-blocked, reduction strictly k-ascending per element.
fn gemm_block(a: &[f32], b: &[f32], cblk: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    for kk in (0..k).step_by(K_BLOCK) {
        let kend = (kk + K_BLOCK).min(k);
        for di in 0..rows {
            let i = i0 + di;
            let crow = &mut cblk[di * n..(di + 1) * n];
            for t in kk..kend {
                let aval = a[i * k + t];
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[t * n..(t + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aval * bv;
                }
            }
        }
    }
}

/// Seed linear: one serial scalar accumulation chain per output element.
pub(crate) fn linear_into_ref(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    kin: usize,
    nout: usize,
) {
    let row = |i: usize, orow: &mut [f32]| {
        let xrow = &x[i * kin..(i + 1) * kin];
        for (j, o) in orow.iter_mut().enumerate() {
            let wrow = &w[j * kin..(j + 1) * kin];
            let mut acc = 0.0f32;
            for t in 0..kin {
                acc += xrow[t] * wrow[t];
            }
            *o = acc + bias.map_or(0.0, |b| b[j]);
        }
    };
    if m <= 1 {
        if m == 1 {
            row(0, out);
        }
        return;
    }
    out.par_chunks_mut(nout)
        .enumerate()
        .for_each(|(i, orow)| row(i, orow));
}

/// Accumulating seed linear: `out[i][j] += x_i · w_j`, serial chains.
pub(crate) fn linear_acc_into_ref(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    m: usize,
    kin: usize,
    nout: usize,
) {
    for i in 0..m {
        let xrow = &x[i * kin..(i + 1) * kin];
        let orow = &mut out[i * nout..(i + 1) * nout];
        for (j, o) in orow.iter_mut().enumerate() {
            let wrow = &w[j * kin..(j + 1) * kin];
            let mut acc = 0.0f32;
            for t in 0..kin {
                acc += xrow[t] * wrow[t];
            }
            *o += acc;
        }
    }
}
