//! Recurrent kernels: LSTM and GRU.
//!
//! Recurrent layers are the reason DUET exists: at batch size 1 their
//! per-timestep GEMMs are too small to occupy a GPU, and the sequential
//! dependence between steps forbids cross-step parallelism, so the CPU often
//! wins (paper §III-B, Fig. 4). These kernels implement the standard cell
//! equations; gate weights follow the PyTorch `[4*hidden, in]` layout with
//! gate order i, f, g, o (LSTM) and r, z, n (GRU).
//!
//! The LSTM path is fused: one gates buffer receives `x @ w_ih^T + b` and
//! then accumulates `h @ w_hh^T` in place (`linear_acc_into`), and the
//! sequence driver reuses that buffer plus ping-pong h/c state across
//! timesteps — no per-step tensor allocation. The gate arithmetic
//! `σ((x·w+b) + h·w)` associates exactly as the two-GEMM composition the
//! seed used, so the fused path is **bit-identical** to composing
//! `linear` + `linear` + gate math with the same dot kernel (the contract
//! test asserts this). Reference mode routes through the composed seed
//! path with serial dots.

use super::elementwise::UnaryOp;
use super::gemm::{linear, linear_acc_into, linear_into};
use super::reference;
use crate::{Tensor, TensorError};

/// Hidden and cell state of an LSTM layer, each `[batch, hidden]`.
#[derive(Debug, Clone)]
pub struct LstmState {
    pub h: Tensor,
    pub c: Tensor,
}

impl LstmState {
    /// Zero state for a given batch and hidden size.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState {
            h: Tensor::zeros(vec![batch, hidden]),
            c: Tensor::zeros(vec![batch, hidden]),
        }
    }
}

/// Validate LSTM weight shapes against an input width. Returns `hidden`.
fn lstm_weight_dims(
    input: usize,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b: &Tensor,
) -> Result<usize, TensorError> {
    w_ih.shape().expect_rank("lstm_step", 2)?;
    w_hh.shape().expect_rank("lstm_step", 2)?;
    let hidden = w_hh.shape().dim(1);
    if w_ih.shape().dim(0) != 4 * hidden
        || w_ih.shape().dim(1) != input
        || w_hh.shape().dim(0) != 4 * hidden
        || b.len() != 4 * hidden
    {
        return Err(TensorError::ShapeMismatch {
            op: "lstm_step",
            lhs: w_ih.shape().dims().to_vec(),
            rhs: w_hh.shape().dims().to_vec(),
        });
    }
    Ok(hidden)
}

/// One fused LSTM timestep over raw slices. `gates` is scratch of len
/// `batch * 4 * hidden`; `h_out`/`c_out` are `batch * hidden`.
#[allow(clippy::too_many_arguments)]
fn lstm_step_fused(
    x: &[f32],
    h_prev: &[f32],
    c_prev: &[f32],
    w_ih: &[f32],
    w_hh: &[f32],
    b: &[f32],
    gates: &mut [f32],
    h_out: &mut [f32],
    c_out: &mut [f32],
    batch: usize,
    input: usize,
    hidden: usize,
) {
    linear_into(x, w_ih, Some(b), gates, batch, input, 4 * hidden);
    linear_acc_into(h_prev, w_hh, gates, batch, hidden, 4 * hidden);
    for bi in 0..batch {
        let g = &gates[bi * 4 * hidden..(bi + 1) * 4 * hidden];
        let (gi, rest) = g.split_at(hidden);
        let (gf, rest) = rest.split_at(hidden);
        let (gg, go) = rest.split_at(hidden);
        let cp = &c_prev[bi * hidden..(bi + 1) * hidden];
        let ho = &mut h_out[bi * hidden..(bi + 1) * hidden];
        let co = &mut c_out[bi * hidden..(bi + 1) * hidden];
        for j in 0..hidden {
            let i_g = UnaryOp::Sigmoid.apply(gi[j]);
            let f_g = UnaryOp::Sigmoid.apply(gf[j]);
            let g_g = gg[j].tanh();
            let o_g = UnaryOp::Sigmoid.apply(go[j]);
            let c_new = f_g * cp[j] + i_g * g_g;
            co[j] = c_new;
            ho[j] = o_g * c_new.tanh();
        }
    }
}

/// Seed composition: two allocating GEMMs then gate math. Kept as the
/// reference-mode path; the fused path must match it bit-for-bit when
/// both use the same dot kernel.
fn lstm_step_composed(
    x: &Tensor,
    state: &LstmState,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b: &Tensor,
) -> Result<LstmState, TensorError> {
    let batch = x.shape().dim(0);
    let hidden = state.h.shape().dim(1);
    let gates_x = linear(x, w_ih, Some(b))?;
    let gates_h = linear(&state.h, w_hh, None)?;
    if gates_x.shape() != gates_h.shape() || gates_x.shape().dim(1) != 4 * hidden {
        return Err(TensorError::ShapeMismatch {
            op: "lstm_step",
            lhs: gates_x.shape().dims().to_vec(),
            rhs: gates_h.shape().dims().to_vec(),
        });
    }
    let gx = gates_x.data();
    let gh = gates_h.data();
    let cd = state.c.data();
    let mut h = vec![0.0f32; batch * hidden];
    let mut c = vec![0.0f32; batch * hidden];
    for bi in 0..batch {
        let row = bi * 4 * hidden;
        for j in 0..hidden {
            let i_g = UnaryOp::Sigmoid.apply(gx[row + j] + gh[row + j]);
            let f_g = UnaryOp::Sigmoid.apply(gx[row + hidden + j] + gh[row + hidden + j]);
            let g_g = (gx[row + 2 * hidden + j] + gh[row + 2 * hidden + j]).tanh();
            let o_g = UnaryOp::Sigmoid.apply(gx[row + 3 * hidden + j] + gh[row + 3 * hidden + j]);
            let c_new = f_g * cd[bi * hidden + j] + i_g * g_g;
            c[bi * hidden + j] = c_new;
            h[bi * hidden + j] = o_g * c_new.tanh();
        }
    }
    Ok(LstmState {
        h: Tensor::from_vec(vec![batch, hidden], h)?,
        c: Tensor::from_vec(vec![batch, hidden], c)?,
    })
}

/// One LSTM timestep.
///
/// `x: [batch, in]`, `w_ih: [4*hidden, in]`, `w_hh: [4*hidden, hidden]`,
/// `b: [4*hidden]`. Returns the next state.
pub fn lstm_step(
    x: &Tensor,
    state: &LstmState,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b: &Tensor,
) -> Result<LstmState, TensorError> {
    if reference::reference_mode() {
        return lstm_step_composed(x, state, w_ih, w_hh, b);
    }
    x.shape().expect_rank("lstm_step", 2)?;
    state.h.shape().expect_rank("lstm_step", 2)?;
    let (batch, input) = (x.shape().dim(0), x.shape().dim(1));
    let hidden = lstm_weight_dims(input, w_ih, w_hh, b)?;
    if state.h.shape().dim(0) != batch
        || state.h.shape().dim(1) != hidden
        || state.c.shape() != state.h.shape()
    {
        return Err(TensorError::ShapeMismatch {
            op: "lstm_step",
            lhs: state.h.shape().dims().to_vec(),
            rhs: vec![batch, hidden],
        });
    }
    let mut gates = vec![0.0f32; batch * 4 * hidden];
    let mut h = vec![0.0f32; batch * hidden];
    let mut c = vec![0.0f32; batch * hidden];
    lstm_step_fused(
        x.data(),
        state.h.data(),
        state.c.data(),
        w_ih.data(),
        w_hh.data(),
        b.data(),
        &mut gates,
        &mut h,
        &mut c,
        batch,
        input,
        hidden,
    );
    Ok(LstmState {
        h: Tensor::from_vec(vec![batch, hidden], h)?,
        c: Tensor::from_vec(vec![batch, hidden], c)?,
    })
}

/// Full single-layer LSTM over a sequence.
///
/// `x: [seq, batch, in]`. Returns the `[seq, batch, hidden]` output stack
/// (all hidden states) and the final state. The driver allocates one gates
/// scratch buffer and one ping-pong state pair for the whole sequence.
pub fn lstm(
    x: &Tensor,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b: &Tensor,
) -> Result<(Tensor, LstmState), TensorError> {
    x.shape().expect_rank("lstm", 3)?;
    let (seq, batch, input) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    if reference::reference_mode() {
        let hidden = w_hh.shape().dim(1);
        let mut state = LstmState::zeros(batch, hidden);
        let mut outputs = Vec::with_capacity(seq * batch * hidden);
        for t in 0..seq {
            let xt = Tensor::from_vec(
                vec![batch, input],
                x.data()[t * batch * input..(t + 1) * batch * input].to_vec(),
            )?;
            state = lstm_step(&xt, &state, w_ih, w_hh, b)?;
            outputs.extend_from_slice(state.h.data());
        }
        return Ok((Tensor::from_vec(vec![seq, batch, hidden], outputs)?, state));
    }
    let hidden = lstm_weight_dims(input, w_ih, w_hh, b)?;
    let mut h = vec![0.0f32; batch * hidden];
    let mut c = vec![0.0f32; batch * hidden];
    let mut h_next = vec![0.0f32; batch * hidden];
    let mut c_next = vec![0.0f32; batch * hidden];
    let mut gates = vec![0.0f32; batch * 4 * hidden];
    let mut outputs = Vec::with_capacity(seq * batch * hidden);
    let xd = x.data();
    for t in 0..seq {
        lstm_step_fused(
            &xd[t * batch * input..(t + 1) * batch * input],
            &h,
            &c,
            w_ih.data(),
            w_hh.data(),
            b.data(),
            &mut gates,
            &mut h_next,
            &mut c_next,
            batch,
            input,
            hidden,
        );
        std::mem::swap(&mut h, &mut h_next);
        std::mem::swap(&mut c, &mut c_next);
        outputs.extend_from_slice(&h);
    }
    Ok((
        Tensor::from_vec(vec![seq, batch, hidden], outputs)?,
        LstmState {
            h: Tensor::from_vec(vec![batch, hidden], h)?,
            c: Tensor::from_vec(vec![batch, hidden], c)?,
        },
    ))
}

/// One GRU timestep. `w_ih: [3*hidden, in]`, `w_hh: [3*hidden, hidden]`,
/// gate order r, z, n (PyTorch convention). Returns the next hidden state.
/// The n-gate couples `r` with the hidden GEMM (`r * (h·w_n)`), so the two
/// GEMMs cannot share a buffer the way the LSTM's do; the win here comes
/// from the lane-split dot kernel underneath `linear`.
pub fn gru_step(
    x: &Tensor,
    h: &Tensor,
    w_ih: &Tensor,
    w_hh: &Tensor,
    b: &Tensor,
) -> Result<Tensor, TensorError> {
    let batch = x.shape().dim(0);
    let hidden = h.shape().dim(1);
    let gx = linear(x, w_ih, Some(b))?;
    let gh = linear(h, w_hh, None)?;
    if gx.shape().dim(1) != 3 * hidden {
        return Err(TensorError::ShapeMismatch {
            op: "gru_step",
            lhs: gx.shape().dims().to_vec(),
            rhs: vec![batch, 3 * hidden],
        });
    }
    let gxd = gx.data();
    let ghd = gh.data();
    let hd = h.data();
    let mut out = vec![0.0f32; batch * hidden];
    for bi in 0..batch {
        let row = bi * 3 * hidden;
        for j in 0..hidden {
            let r = UnaryOp::Sigmoid.apply(gxd[row + j] + ghd[row + j]);
            let z = UnaryOp::Sigmoid.apply(gxd[row + hidden + j] + ghd[row + hidden + j]);
            let n = (gxd[row + 2 * hidden + j] + r * ghd[row + 2 * hidden + j]).tanh();
            out[bi * hidden + j] = (1.0 - z) * n + z * hd[bi * hidden + j];
        }
    }
    Tensor::from_vec(vec![batch, hidden], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_weights(hidden: usize, input: usize, gates: usize) -> (Tensor, Tensor, Tensor) {
        (
            Tensor::randn(vec![gates * hidden, input], 0.2, 1),
            Tensor::randn(vec![gates * hidden, hidden], 0.2, 2),
            Tensor::randn(vec![gates * hidden], 0.2, 3),
        )
    }

    #[test]
    fn lstm_step_shapes() {
        let (w_ih, w_hh, b) = tiny_weights(6, 4, 4);
        let x = Tensor::randn(vec![2, 4], 1.0, 5);
        let s = LstmState::zeros(2, 6);
        let s2 = lstm_step(&x, &s, &w_ih, &w_hh, &b).unwrap();
        assert_eq!(s2.h.shape().dims(), &[2, 6]);
        assert_eq!(s2.c.shape().dims(), &[2, 6]);
    }

    #[test]
    fn lstm_hidden_bounded_by_tanh() {
        let (w_ih, w_hh, b) = tiny_weights(8, 8, 4);
        let x = Tensor::randn(vec![4, 8], 10.0, 6);
        let s = LstmState::zeros(4, 8);
        let s2 = lstm_step(&x, &s, &w_ih, &w_hh, &b).unwrap();
        assert!(s2.h.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn lstm_zero_weights_zero_input_stays_zero() {
        let w_ih = Tensor::zeros(vec![16, 4]);
        let w_hh = Tensor::zeros(vec![16, 4]);
        let b = Tensor::zeros(vec![16]);
        let x = Tensor::zeros(vec![3, 1, 4]);
        let (out, st) = lstm(&x, &w_ih, &w_hh, &b).unwrap();
        // i=f=o=sigmoid(0)=0.5, g=tanh(0)=0 → c=0, h=0 at every step.
        assert!(out.data().iter().all(|&v| v == 0.0));
        assert!(st.c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lstm_sequence_matches_manual_unroll() {
        let (w_ih, w_hh, b) = tiny_weights(5, 3, 4);
        let x = Tensor::randn(vec![4, 2, 3], 1.0, 9);
        let (stack, fin) = lstm(&x, &w_ih, &w_hh, &b).unwrap();
        assert_eq!(stack.shape().dims(), &[4, 2, 5]);
        // Manual unroll must agree with the batched driver.
        let mut st = LstmState::zeros(2, 5);
        for t in 0..4 {
            let xt = Tensor::from_vec(vec![2, 3], x.data()[t * 6..(t + 1) * 6].to_vec()).unwrap();
            st = lstm_step(&xt, &st, &w_ih, &w_hh, &b).unwrap();
        }
        assert!(fin.h.approx_eq(&st.h, 1e-6));
        assert!(fin.c.approx_eq(&st.c, 1e-6));
        assert_eq!(&stack.data()[3 * 10..], st.h.data());
    }

    /// The fused step and the two-GEMM composition share every arithmetic
    /// operation in the same association, so they must agree bit-for-bit.
    #[test]
    fn lstm_fused_bit_identical_to_composed() {
        let (w_ih, w_hh, b) = tiny_weights(17, 9, 4);
        let x = Tensor::randn(vec![3, 9], 1.0, 31);
        let s = LstmState {
            h: Tensor::randn(vec![3, 17], 0.7, 32),
            c: Tensor::randn(vec![3, 17], 0.7, 33),
        };
        let fused = lstm_step(&x, &s, &w_ih, &w_hh, &b).unwrap();
        let composed = lstm_step_composed(&x, &s, &w_ih, &w_hh, &b).unwrap();
        assert!(fused
            .h
            .data()
            .iter()
            .zip(composed.h.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(fused
            .c
            .data()
            .iter()
            .zip(composed.c.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn lstm_step_rejects_mismatched_weights() {
        let x = Tensor::zeros(vec![1, 4]);
        let s = LstmState::zeros(1, 6);
        let w_ih = Tensor::zeros(vec![24, 4]);
        let w_hh_bad = Tensor::zeros(vec![20, 6]);
        let b = Tensor::zeros(vec![24]);
        assert!(lstm_step(&x, &s, &w_ih, &w_hh_bad, &b).is_err());
    }

    #[test]
    fn gru_step_shapes_and_bounds() {
        let (w_ih, w_hh, b) = tiny_weights(7, 3, 3);
        let x = Tensor::randn(vec![2, 3], 1.0, 8);
        let h = Tensor::zeros(vec![2, 7]);
        let h2 = gru_step(&x, &h, &w_ih, &w_hh, &b).unwrap();
        assert_eq!(h2.shape().dims(), &[2, 7]);
        assert!(h2.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gru_z_one_keeps_state() {
        // With huge z-gate bias, h' ≈ h.
        let hidden = 4;
        let w_ih = Tensor::zeros(vec![3 * hidden, 2]);
        let w_hh = Tensor::zeros(vec![3 * hidden, hidden]);
        let mut bias = vec![0.0; 3 * hidden];
        for j in 0..hidden {
            bias[hidden + j] = 100.0; // z gate saturated to 1
        }
        let b = Tensor::from_vec(vec![3 * hidden], bias).unwrap();
        let x = Tensor::randn(vec![1, 2], 1.0, 4);
        let h = Tensor::randn(vec![1, hidden], 0.5, 5);
        let h2 = gru_step(&x, &h, &w_ih, &w_hh, &b).unwrap();
        assert!(h2.approx_eq(&h, 1e-4));
    }
}
