//! Small numeric utilities used by inference post-processing: argmax,
//! top-k, cosine similarity, one-hot encoding.

use crate::{Tensor, TensorError};

/// Index of the maximum element in each row of `x: [..., c]`.
/// Ties break toward the lower index (argmax convention).
pub fn argmax(x: &Tensor) -> Result<Vec<usize>, TensorError> {
    let rank = x.shape().rank();
    if rank == 0 {
        return Err(TensorError::RankMismatch {
            op: "argmax",
            expected: 1,
            actual: 0,
        });
    }
    let c = x.shape().dim(rank - 1);
    if c == 0 {
        return Err(TensorError::InvalidArgument {
            op: "argmax",
            msg: "empty trailing dimension".into(),
        });
    }
    Ok(x.data()
        .chunks(c)
        .map(|row| {
            row.iter()
                .enumerate()
                .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                })
                .0
        })
        .collect())
}

/// The `k` largest elements of a rank-1 tensor, as `(index, value)` pairs
/// in descending value order (stable: equal values keep index order).
pub fn topk(x: &Tensor, k: usize) -> Result<Vec<(usize, f32)>, TensorError> {
    x.shape().expect_rank("topk", 1)?;
    if k > x.len() {
        return Err(TensorError::InvalidArgument {
            op: "topk",
            msg: format!("k={k} exceeds length {}", x.len()),
        });
    }
    let mut pairs: Vec<(usize, f32)> = x.data().iter().copied().enumerate().collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    Ok(pairs)
}

/// Cosine similarity between two rank-1 tensors of equal length.
/// Returns 0 when either vector is all-zero.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> Result<f32, TensorError> {
    a.shape().expect_rank("cosine_similarity", 1)?;
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "cosine_similarity",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for (&x, &y) in a.data().iter().zip(b.data()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok(dot / (na.sqrt() * nb.sqrt()))
}

/// One-hot encode integral class ids into `[n, classes]`.
pub fn one_hot(ids: &[usize], classes: usize) -> Result<Tensor, TensorError> {
    let mut data = vec![0.0f32; ids.len() * classes];
    for (i, &id) in ids.iter().enumerate() {
        if id >= classes {
            return Err(TensorError::InvalidArgument {
                op: "one_hot",
                msg: format!("class {id} out of range {classes}"),
            });
        }
        data[i * classes + id] = 1.0;
    }
    Tensor::from_vec(vec![ids.len(), classes], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_per_row_with_ties_low() {
        let x = Tensor::from_vec(vec![2, 3], vec![1., 3., 2., 5., 5., 1.]).unwrap();
        assert_eq!(argmax(&x).unwrap(), vec![1, 0]);
    }

    #[test]
    fn argmax_rejects_scalar() {
        assert!(argmax(&Tensor::scalar(1.0)).is_err());
    }

    #[test]
    fn topk_descending_and_stable() {
        let x = Tensor::from_vec(vec![5], vec![0.5, 2.0, 2.0, -1.0, 3.0]).unwrap();
        let t = topk(&x, 3).unwrap();
        assert_eq!(t, vec![(4, 3.0), (1, 2.0), (2, 2.0)]);
        assert!(topk(&x, 6).is_err());
    }

    #[test]
    fn topk_full_is_a_sort() {
        let x = Tensor::randn(vec![16], 1.0, 3);
        let t = topk(&x, 16).unwrap();
        for w in t.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        let a = Tensor::from_vec(vec![3], vec![1., 0., 0.]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0., 1., 0.]).unwrap();
        assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &b).unwrap(), 0.0);
        let neg = Tensor::from_vec(vec![3], vec![-1., 0., 0.]).unwrap();
        assert!((cosine_similarity(&a, &neg).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let a = Tensor::zeros(vec![4]);
        let b = Tensor::ones(vec![4]);
        assert_eq!(cosine_similarity(&a, &b).unwrap(), 0.0);
    }

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(t.shape().dims(), &[2, 3]);
        assert_eq!(t.data(), &[0., 0., 1., 1., 0., 0.]);
        assert!(one_hot(&[3], 3).is_err());
    }
}
