//! # duet-tensor
//!
//! Dense `f32` tensors and the real CPU kernels that back every operator in
//! the DUET engine.
//!
//! DUET schedules *subgraphs* of a tensor program across a coupled CPU-GPU
//! pair. In this reproduction the GPU is an analytic timing model (see
//! `duet-device`), but the *numerics* of every operator are executed for
//! real by the kernels in this crate, so a heterogeneous run can be checked
//! element-for-element against a single-device run.
//!
//! The kernels are written in the style of the HPC guides for this session:
//! blocked GEMM parallelised with rayon, no allocation inside inner loops,
//! and deterministic results independent of thread count.
//!
//! ## Quick example
//!
//! ```
//! use duet_tensor::{Tensor, kernels};
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::eye(3);
//! let c = kernels::matmul(&a, &b).unwrap();
//! assert_eq!(c.data(), a.data());
//! ```

pub mod error;
pub mod kernels;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, TensorError>;
