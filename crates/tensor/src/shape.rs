//! Shapes: dimension lists with volume/stride helpers.

use crate::TensorError;

/// The shape of a dense tensor: an ordered list of dimension extents.
///
/// Row-major (C) layout is assumed everywhere in the workspace. A rank-0
/// shape is a scalar with volume 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Create a shape from dimension extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= rank()`; indexing a shape out of range is a
    /// programming error, not a data error.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of the tensor in bytes (f32 elements).
    pub fn byte_size(&self) -> usize {
        self.volume() * std::mem::size_of::<f32>()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.rank()];
        let mut acc = 1;
        for (i, d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Check that `axis` is in range for this shape.
    pub fn check_axis(&self, op: &'static str, axis: usize) -> Result<(), TensorError> {
        if axis >= self.rank() {
            return Err(TensorError::InvalidArgument {
                op,
                msg: format!("axis {axis} out of range for rank {}", self.rank()),
            });
        }
        Ok(())
    }

    /// Require an exact rank, returning a uniform error otherwise.
    pub fn expect_rank(&self, op: &'static str, rank: usize) -> Result<(), TensorError> {
        if self.rank() != rank {
            return Err(TensorError::RankMismatch {
                op,
                expected: rank,
                actual: self.rank(),
            });
        }
        Ok(())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
        assert_eq!(s.byte_size(), 96);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn strides_of_scalar_empty() {
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn zero_dim_gives_zero_volume() {
        let s = Shape::new(vec![4, 0, 2]);
        assert_eq!(s.volume(), 0);
    }

    #[test]
    fn axis_check() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.check_axis("t", 1).is_ok());
        assert!(s.check_axis("t", 2).is_err());
    }

    #[test]
    fn expect_rank_errors() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.expect_rank("t", 2).is_ok());
        let e = s.expect_rank("t", 3).unwrap_err();
        assert_eq!(
            e,
            TensorError::RankMismatch {
                op: "t",
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2x3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn from_array_and_slice() {
        let a: Shape = [1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert_eq!(a, b);
    }
}
