//! The dense `f32` tensor type.

use std::sync::Arc;

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// The element buffer is an `Arc<[f32]>`, so cloning a tensor — which the
/// heterogeneous executor does every time a value crosses the (simulated)
/// PCIe link — is O(1) and never copies the payload. Tensors are immutable
/// once built; kernels produce fresh tensors.
#[derive(Debug, Clone)]
pub struct Tensor {
    shape: Shape,
    data: Arc<[f32]>,
}

impl Tensor {
    /// Build a tensor from a shape and matching buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: data.into(),
        })
    }

    /// Build a tensor that shares an existing buffer without copying.
    ///
    /// This is how the tape executor publishes arena slots as output
    /// tensors: the `Arc` is cloned (refcount bump), not the payload.
    pub fn from_arc(shape: impl Into<Shape>, data: Arc<[f32]>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The shared element buffer itself (O(1) clone handle).
    pub fn data_arc(&self) -> &Arc<[f32]> {
        &self.data
    }

    /// A scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value].into(),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n].into(),
        }
    }

    /// All-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n].into(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor {
            shape: Shape::new(vec![n, n]),
            data: data.into(),
        }
    }

    /// Deterministic pseudo-random tensor, N(0, stddev), seeded.
    ///
    /// Model-zoo weights use this so every experiment is reproducible.
    pub fn randn(shape: impl Into<Shape>, stddev: f32, seed: u64) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Box-Muller via rand's StandardNormal-free path: use uniform pairs.
        // rand_distr is not in the dependency set; a hand-rolled Box-Muller
        // keeps the distribution correct and the dependency list short.
        let mut data = Vec::with_capacity(n);
        let uniform = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
        while data.len() < n {
            let u1: f32 = uniform.sample(&mut rng);
            let u2: f32 = uniform.sample(&mut rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * stddev);
            if data.len() < n {
                data.push(r * theta.sin() * stddev);
            }
        }
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// Uniform random tensor in `[lo, hi)`, seeded.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        let shape = shape.into();
        let n = shape.volume();
        let mut rng = SmallRng::seed_from_u64(seed);
        let uniform = rand::distributions::Uniform::new(lo, hi);
        let data: Vec<f32> = (0..n).map(|_| uniform.sample(&mut rng)).collect();
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw element buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the payload in bytes — what a CPU↔GPU transfer would move.
    pub fn byte_size(&self) -> usize {
        self.shape.byte_size()
    }

    /// Reinterpret the buffer under a new shape of identical volume.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.volume() != self.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::clone(&self.data),
        })
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Approximate equality within `tol` (same shape required).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_volume() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 5]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(vec![3]);
        assert_eq!(z.data(), &[0.0, 0.0, 0.0]);
        let o = Tensor::ones(vec![2]);
        assert_eq!(o.data(), &[1.0, 1.0]);
        let f = Tensor::full(vec![2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.data()[0], 1.0);
        assert_eq!(i.data()[4], 1.0);
        assert_eq!(i.data()[1], 0.0);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(vec![16], 1.0, 42);
        let b = Tensor::randn(vec![16], 1.0, 42);
        let c = Tensor::randn(vec![16], 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn randn_roughly_standard_normal() {
        let t = Tensor::randn(vec![10_000], 1.0, 7);
        let mean: f32 = t.data().iter().sum::<f32>() / t.len() as f32;
        let var: f32 = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rand_uniform_in_range() {
        let t = Tensor::rand_uniform(vec![1000], -2.0, 3.0, 9);
        assert!(t.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn clone_shares_buffer() {
        let a = Tensor::randn(vec![1024], 1.0, 1);
        let b = a.clone();
        assert!(std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
    }

    #[test]
    fn reshape_shares_buffer_and_checks_volume() {
        let a = Tensor::zeros(vec![2, 6]);
        let b = a.reshape(vec![3, 4]).unwrap();
        assert_eq!(b.shape().dims(), &[3, 4]);
        assert!(std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
        assert!(a.reshape(vec![5]).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![1.0, 2.0 + 1e-6]).unwrap();
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-8));
        let c = Tensor::zeros(vec![3]);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn byte_size_is_4x_volume() {
        assert_eq!(Tensor::zeros(vec![10, 10]).byte_size(), 400);
    }
}
