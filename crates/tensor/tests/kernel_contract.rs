//! Reduction-order contract tests for the vectorized kernel engine.
//!
//! Every heavy kernel documents one of two numeric contracts against the
//! seed scalar implementations (reachable via `set_reference_mode`, see
//! `kernels/reference.rs`):
//!
//! * **Exact (`to_bits` identity).** GEMM (and everything lowered onto it:
//!   `matmul`, `conv2d`) and the depthwise convolution compute each output
//!   element as one scalar accumulation chain in a fixed k-ascending
//!   order. Tiling and lane-chunking change which elements advance
//!   together, never the order within one element's chain, so the
//!   vectorized engine must reproduce the seed bytes bit-for-bit.
//! * **Ulp-bounded.** `linear` (and the LSTM gates on top of it) splits
//!   each dot product into `LANES` independent partial sums — the
//!   reassociation that makes a dot product vectorizable. The contract is
//!   ≤ 4 ulp *measured at the scale of the accumulated magnitude*
//!   `Σ|xᵢ·wᵢ|`: under cancellation the result itself can land arbitrarily
//!   close to zero, where "ulp of the result" is not a meaningful unit,
//!   but the rounding error of either association is still bounded by a
//!   few ulp of the magnitude that flowed through the accumulators.
//!
//! Reference mode is process-global, so every test serializes on one lock
//! and restores the flag via a drop guard.

use std::sync::Mutex;

use duet_tensor::kernels::{self, set_reference_mode, LstmState};
use duet_tensor::Tensor;
use proptest::prelude::*;

static REF_LOCK: Mutex<()> = Mutex::new(());

struct RefModeGuard;
impl Drop for RefModeGuard {
    fn drop(&mut self) {
        set_reference_mode(false);
    }
}

/// Run `f` with the seed kernels active; the flag is restored even if
/// `f` panics. Callers must hold [`REF_LOCK`].
fn reference<T>(f: impl FnOnce() -> T) -> T {
    set_reference_mode(true);
    let _guard = RefModeGuard;
    f()
}

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REF_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Number of representable f32 values between `a` and `b` (0 for equal
/// values, treating +0 and −0 as equal).
fn bits_apart(a: f32, b: f32) -> u64 {
    if a == b {
        return 0;
    }
    let order = |f: f32| -> i64 {
        let i = f.to_bits() as i32 as i64;
        if i < 0 {
            (i32::MIN as i64) - i
        } else {
            i
        }
    };
    order(a).abs_diff(order(b))
}

/// The ulp-bounded contract: within `ulps` representable values, or
/// within `ulps` ulp of the accumulated magnitude `mag` when the result
/// sits too close to zero for bit distance to mean anything.
fn close_ulps(a: f32, b: f32, mag: f32, ulps: u32) -> bool {
    bits_apart(a, b) <= ulps as u64 || (a - b).abs() <= ulps as f32 * mag * f32::EPSILON
}

fn assert_bits_eq(fast: &Tensor, slow: &Tensor, what: &str) {
    assert_eq!(fast.shape(), slow.shape(), "{what}: shape");
    for (i, (f, s)) in fast.data().iter().zip(slow.data()).enumerate() {
        assert_eq!(f.to_bits(), s.to_bits(), "{what}: element {i}: {f} vs {s}");
    }
}

// --- exact (`to_bits` identity) contracts -------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The register-tiled GEMM reproduces the seed blocked GEMM's bytes on
    /// arbitrary shapes — including tile-boundary stragglers on every axis
    /// and the parallel row split (m > 32).
    #[test]
    fn matmul_bits_identical_across_engines(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let _l = lock();
        let a = Tensor::randn(vec![m, k], 1.0, seed);
        let b = Tensor::randn(vec![k, n], 1.0, seed.wrapping_add(1));
        let fast = kernels::matmul(&a, &b).unwrap();
        let slow = reference(|| kernels::matmul(&a, &b).unwrap());
        assert_bits_eq(&fast, &slow, &format!("matmul {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_parallel_row_split_bits_identical() {
    // m = 65 forces the rayon row split (ROW_BLOCK = 32) with a ragged
    // final block; the split must not change any element's chain.
    let _l = lock();
    let a = Tensor::randn(vec![65, 48], 1.0, 7);
    let b = Tensor::randn(vec![48, 33], 1.0, 8);
    let fast = kernels::matmul(&a, &b).unwrap();
    let slow = reference(|| kernels::matmul(&a, &b).unwrap());
    assert_bits_eq(&fast, &slow, "matmul 65x48x33");
}

#[test]
fn conv2d_bits_identical_across_engines() {
    // conv2d lowers to im2col + the exact-contract GEMM, so it inherits
    // bit identity — including padded borders and strided geometries.
    let _l = lock();
    for &(n, c_in, c_out, hw, stride, padding) in &[
        (1usize, 3usize, 8usize, 11usize, 1usize, 1usize),
        (2, 4, 6, 9, 2, 1),
        (1, 1, 4, 12, 1, 0),
        (1, 8, 16, 7, 2, 0),
    ] {
        let x = Tensor::randn(vec![n, c_in, hw, hw], 1.0, 11);
        let w = Tensor::randn(vec![c_out, c_in, 3, 3], 0.5, 12);
        let b = Tensor::randn(vec![c_out], 0.5, 13);
        let fast = kernels::conv2d(&x, &w, Some(&b), stride, padding).unwrap();
        let slow = reference(|| kernels::conv2d(&x, &w, Some(&b), stride, padding).unwrap());
        assert_bits_eq(
            &fast,
            &slow,
            &format!("conv2d n{n} c{c_in}->{c_out} {hw}x{hw} s{stride} p{padding}"),
        );
    }
}

#[test]
fn depthwise_bits_identical_across_engines() {
    // The lane-chunked interior computes 8 outputs at once but keeps each
    // output's chain `bias, then taps in (ky,kx) order` — the scalar
    // kernel's order exactly. Geometries cover interior spans wider and
    // narrower than one lane chunk, padded borders, and the strided path
    // (which shares the scalar kernel by construction).
    let _l = lock();
    for &(c, hw, stride, padding) in &[
        (3usize, 12usize, 1usize, 1usize),
        (8, 7, 1, 0),
        (4, 19, 1, 2),
        (3, 12, 2, 1),
    ] {
        let x = Tensor::randn(vec![2, c, hw, hw], 1.0, 21);
        let w = Tensor::randn(vec![c, 1, 3, 3], 0.5, 22);
        let b = Tensor::randn(vec![c], 0.5, 23);
        let fast = kernels::depthwise_conv2d(&x, &w, Some(&b), stride, padding).unwrap();
        let slow =
            reference(|| kernels::depthwise_conv2d(&x, &w, Some(&b), stride, padding).unwrap());
        assert_bits_eq(
            &fast,
            &slow,
            &format!("depthwise c{c} {hw}x{hw} s{stride} p{padding}"),
        );
    }
}

// --- ulp-bounded contracts ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The lane-split linear stays within 4 ulp (at accumulated-magnitude
    /// scale) of the serial seed kernel for the zoo's distributions:
    /// k up to a few hundred, unit-variance values. Sizes sweep every
    /// lane-tail residue (`kin % LANES`) and the 4-row output tiling tail.
    #[test]
    fn linear_within_4_ulp_of_reference(
        m in 1usize..4,
        kin in 1usize..280,
        nout in 1usize..40,
        bias_on in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let _l = lock();
        let x = Tensor::randn(vec![m, kin], 1.0, seed);
        let w = Tensor::randn(vec![nout, kin], 1.0, seed.wrapping_add(1));
        let b = Tensor::randn(vec![nout], 1.0, seed.wrapping_add(2));
        let bias = bias_on.then_some(&b);
        let fast = kernels::linear(&x, &w, bias).unwrap();
        let slow = reference(|| kernels::linear(&x, &w, bias).unwrap());
        for i in 0..m {
            let xrow = &x.data()[i * kin..(i + 1) * kin];
            for j in 0..nout {
                let wrow = &w.data()[j * kin..(j + 1) * kin];
                let mag: f32 = xrow
                    .iter()
                    .zip(wrow)
                    .map(|(a, c)| (a * c).abs())
                    .sum::<f32>()
                    + if bias_on { b.data()[j].abs() } else { 0.0 };
                let (f, s) = (fast.data()[i * nout + j], slow.data()[i * nout + j]);
                prop_assert!(
                    close_ulps(f, s, mag, 4),
                    "linear {m}x{kin}x{nout} at ({i},{j}): {f} vs {s} ({} bits apart, mag {mag})",
                    bits_apart(f, s)
                );
            }
        }
    }

    /// Same contract for the accumulating variant the LSTM gates use.
    #[test]
    fn linear_acc_within_4_ulp_of_reference(
        kin in 1usize..200,
        nout in 1usize..30,
        seed in 0u64..1000,
    ) {
        let _l = lock();
        let x = Tensor::randn(vec![2, kin], 1.0, seed);
        let w = Tensor::randn(vec![nout, kin], 1.0, seed.wrapping_add(1));
        let init = Tensor::randn(vec![2, nout], 1.0, seed.wrapping_add(2));
        let mut fast = init.data().to_vec();
        kernels::linear_acc_into(x.data(), w.data(), &mut fast, 2, kin, nout);
        let mut slow = init.data().to_vec();
        reference(|| kernels::linear_acc_into(x.data(), w.data(), &mut slow, 2, kin, nout));
        for i in 0..2 {
            let xrow = &x.data()[i * kin..(i + 1) * kin];
            for j in 0..nout {
                let wrow = &w.data()[j * kin..(j + 1) * kin];
                let mag: f32 = xrow
                    .iter()
                    .zip(wrow)
                    .map(|(a, c)| (a * c).abs())
                    .sum::<f32>()
                    + init.data()[i * nout + j].abs();
                let (f, s) = (fast[i * nout + j], slow[i * nout + j]);
                prop_assert!(
                    close_ulps(f, s, mag, 4),
                    "linear_acc {kin}x{nout} at ({i},{j}): {f} vs {s} ({} bits apart)",
                    bits_apart(f, s)
                );
            }
        }
    }
}

/// Every lane-tail residue of the dot kernel, batch-1 (the serve-arena
/// hot path that skips the parallel split entirely).
#[test]
fn linear_batch1_every_tail_residue() {
    let _l = lock();
    for kin in 1..=2 * kernels::micro::LANES + 1 {
        let x = Tensor::randn(vec![1, kin], 1.0, kin as u64);
        let w = Tensor::randn(vec![5, kin], 1.0, 100 + kin as u64);
        let fast = kernels::linear(&x, &w, None).unwrap();
        let slow = reference(|| kernels::linear(&x, &w, None).unwrap());
        for j in 0..5 {
            let wrow = &w.data()[j * kin..(j + 1) * kin];
            let mag: f32 = x.data().iter().zip(wrow).map(|(a, c)| (a * c).abs()).sum();
            assert!(
                close_ulps(fast.data()[j], slow.data()[j], mag, 4),
                "kin={kin} j={j}: {} vs {}",
                fast.data()[j],
                slow.data()[j]
            );
        }
    }
}

/// The fused LSTM (shared gates buffer, lane-split dots) against the seed
/// composition (two allocating GEMMs, serial dots) over a full sequence.
/// The gate pre-activations carry the 4-ulp linear contract; sigmoid and
/// tanh are contractive (|σ'| ≤ ¼, |tanh'| ≤ 1), so the natural bound on
/// the state trajectory is a small absolute tolerance, not ulp.
#[test]
fn lstm_sequence_close_to_reference() {
    let _l = lock();
    let (seq, batch, input, hidden) = (6, 2, 13, 17);
    let x = Tensor::randn(vec![seq, batch, input], 1.0, 41);
    let w_ih = Tensor::randn(vec![4 * hidden, input], 0.3, 42);
    let w_hh = Tensor::randn(vec![4 * hidden, hidden], 0.3, 43);
    let b = Tensor::randn(vec![4 * hidden], 0.3, 44);
    let (fast_out, fast_fin) = kernels::lstm(&x, &w_ih, &w_hh, &b).unwrap();
    let (slow_out, slow_fin) = reference(|| kernels::lstm(&x, &w_ih, &w_hh, &b).unwrap());
    let max_diff = |a: &Tensor, c: &Tensor| {
        a.data()
            .iter()
            .zip(c.data())
            .map(|(p, q)| (p - q).abs())
            .fold(0.0f32, f32::max)
    };
    assert!(
        max_diff(&fast_out, &slow_out) <= 1e-4,
        "hidden stack diverged"
    );
    assert!(
        max_diff(&fast_fin.c, &slow_fin.c) <= 1e-4,
        "cell state diverged"
    );
    // And the step entry point agrees with the sequence driver's last state.
    let mut st = LstmState::zeros(batch, hidden);
    for t in 0..seq {
        let xt = Tensor::from_vec(
            vec![batch, input],
            x.data()[t * batch * input..(t + 1) * batch * input].to_vec(),
        )
        .unwrap();
        st = kernels::lstm_step(&xt, &st, &w_ih, &w_hh, &b).unwrap();
    }
    assert_bits_eq(&st.h, &fast_fin.h, "lstm step-vs-driver h");
    assert_bits_eq(&st.c, &fast_fin.c, "lstm step-vs-driver c");
}

/// Determinism: the vectorized engine's lane structure is fixed, so the
/// same inputs produce the same bits run over run — the property the
/// tape's bit-identity suite builds on.
#[test]
fn vectorized_kernels_deterministic() {
    let _l = lock();
    let x = Tensor::randn(vec![3, 100], 1.0, 51);
    let w = Tensor::randn(vec![20, 100], 1.0, 52);
    let y1 = kernels::linear(&x, &w, None).unwrap();
    let y2 = kernels::linear(&x, &w, None).unwrap();
    assert_bits_eq(&y1, &y2, "linear determinism");
    let a = Tensor::randn(vec![40, 64], 1.0, 53);
    let bm = Tensor::randn(vec![64, 50], 1.0, 54);
    let c1 = kernels::matmul(&a, &bm).unwrap();
    let c2 = kernels::matmul(&a, &bm).unwrap();
    assert_bits_eq(&c1, &c2, "matmul determinism");
}
