//! Property-based tests for the tensor kernels: algebraic identities
//! that must hold for arbitrary inputs, not just hand-picked cases.

use duet_tensor::{kernels, Shape, Tensor};
use proptest::prelude::*;

fn tensor(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    (any::<u64>()).prop_map(move |seed| Tensor::randn(Shape::new(dims.clone()), 1.0, seed))
}

fn dims2() -> impl Strategy<Value = (usize, usize)> {
    (1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- GEMM algebra ---

    #[test]
    fn matmul_identity_left_and_right((m, n) in dims2(), seed in any::<u64>()) {
        let a = Tensor::randn(vec![m, n], 1.0, seed);
        let left = kernels::matmul(&Tensor::eye(m), &a).unwrap();
        let right = kernels::matmul(&a, &Tensor::eye(n)).unwrap();
        prop_assert!(left.approx_eq(&a, 1e-4));
        prop_assert!(right.approx_eq(&a, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition(
        (m, k) in dims2(), n in 1usize..10, s in any::<u64>()
    ) {
        let a = Tensor::randn(vec![m, k], 1.0, s);
        let b = Tensor::randn(vec![k, n], 1.0, s ^ 1);
        let c = Tensor::randn(vec![k, n], 1.0, s ^ 2);
        let lhs = kernels::matmul(&a, &kernels::add(&b, &c).unwrap()).unwrap();
        let rhs = kernels::add(
            &kernels::matmul(&a, &b).unwrap(),
            &kernels::matmul(&a, &c).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-2 * k as f32));
    }

    #[test]
    fn transpose_swaps_matmul_order((m, k) in dims2(), n in 1usize..10, s in any::<u64>()) {
        // (A B)^T = B^T A^T
        let a = Tensor::randn(vec![m, k], 1.0, s);
        let b = Tensor::randn(vec![k, n], 1.0, s ^ 7);
        let lhs = kernels::transpose2d(&kernels::matmul(&a, &b).unwrap()).unwrap();
        let rhs = kernels::matmul(
            &kernels::transpose2d(&b).unwrap(),
            &kernels::transpose2d(&a).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3 * k as f32));
    }

    // --- Elementwise identities ---

    #[test]
    fn relu_is_idempotent(t in tensor(vec![32])) {
        let once = kernels::relu(&t);
        let twice = kernels::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tanh_is_odd_sigmoid_is_shifted(t in tensor(vec![32])) {
        let neg = kernels::scale(&t, -1.0);
        // tanh(-x) == -tanh(x)
        let lhs = kernels::tanh(&neg);
        let rhs = kernels::scale(&kernels::tanh(&t), -1.0);
        prop_assert!(lhs.approx_eq(&rhs, 1e-6));
        // sigmoid(x) + sigmoid(-x) == 1
        let s = kernels::add(&kernels::sigmoid(&t), &kernels::sigmoid(&neg)).unwrap();
        prop_assert!(s.approx_eq(&Tensor::ones(vec![32]), 1e-5));
    }

    #[test]
    fn add_commutes_mul_commutes(a in tensor(vec![16]), b in tensor(vec![16])) {
        prop_assert_eq!(
            kernels::add(&a, &b).unwrap(),
            kernels::add(&b, &a).unwrap()
        );
        prop_assert_eq!(
            kernels::mul(&a, &b).unwrap(),
            kernels::mul(&b, &a).unwrap()
        );
    }

    // --- Normalisation ---

    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, cols in 1usize..20, s in any::<u64>()) {
        let x = Tensor::randn(vec![rows, cols], 3.0, s);
        let y = kernels::softmax(&x).unwrap();
        for row in y.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_ranking(cols in 2usize..16, s in any::<u64>()) {
        let x = Tensor::randn(vec![1, cols], 2.0, s);
        let y = kernels::softmax(&x).unwrap();
        for i in 0..cols {
            for j in 0..cols {
                if x.data()[i] < x.data()[j] {
                    prop_assert!(y.data()[i] <= y.data()[j]);
                }
            }
        }
    }

    // --- Structure ops ---

    #[test]
    fn split_concat_roundtrip(parts in 1usize..5, per in 1usize..5, rows in 1usize..6, s in any::<u64>()) {
        let x = Tensor::randn(vec![rows, parts * per], 1.0, s);
        let pieces = kernels::split(&x, parts, 1).unwrap();
        let refs: Vec<&Tensor> = pieces.iter().collect();
        let back = kernels::concat(&refs, 1).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn reductions_are_consistent(rows in 1usize..6, cols in 1usize..16, s in any::<u64>()) {
        let x = Tensor::randn(vec![rows, cols], 1.0, s);
        let sum = kernels::reduce_sum(&x).unwrap();
        let mean = kernels::reduce_mean(&x).unwrap();
        let max = kernels::reduce_max(&x).unwrap();
        for r in 0..rows {
            prop_assert!((mean.data()[r] - sum.data()[r] / cols as f32).abs() < 1e-5);
            let row = &x.data()[r * cols..(r + 1) * cols];
            prop_assert!(row.iter().all(|&v| v <= max.data()[r]));
            prop_assert!(row.contains(&max.data()[r]));
        }
    }

    #[test]
    fn embedding_rows_match_table(vocab in 1usize..20, dim in 1usize..8, n in 1usize..10, s in any::<u64>()) {
        let table = Tensor::randn(vec![vocab, dim], 1.0, s);
        let ids_raw = Tensor::rand_uniform(vec![n], 0.0, vocab as f32, s ^ 3);
        let ids: Vec<f32> = ids_raw.data().iter().map(|v| v.floor()).collect();
        let ids_t = Tensor::from_vec(vec![n], ids.clone()).unwrap();
        let out = kernels::embedding(&table, &ids_t).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            let want = &table.data()[id as usize * dim..(id as usize + 1) * dim];
            prop_assert_eq!(&out.data()[i * dim..(i + 1) * dim], want);
        }
    }

    // --- Convolution ---

    #[test]
    fn conv_with_delta_kernel_is_identity(c in 1usize..4, hw in 3usize..8, s in any::<u64>()) {
        // A 1x1 kernel that is the identity per channel reproduces input.
        let x = Tensor::randn(vec![1, c, hw, hw], 1.0, s);
        let mut w = vec![0.0f32; c * c];
        for i in 0..c {
            w[i * c + i] = 1.0;
        }
        let w = Tensor::from_vec(vec![c, c, 1, 1], w).unwrap();
        let y = kernels::conv2d(&x, &w, None, 1, 0).unwrap();
        prop_assert!(y.approx_eq(&x, 1e-5));
    }

    #[test]
    fn conv_is_linear_in_input(hw in 3usize..8, s in any::<u64>()) {
        let x1 = Tensor::randn(vec![1, 2, hw, hw], 1.0, s);
        let x2 = Tensor::randn(vec![1, 2, hw, hw], 1.0, s ^ 9);
        let w = Tensor::randn(vec![3, 2, 3, 3], 1.0, s ^ 4);
        let sum = kernels::add(&x1, &x2).unwrap();
        let lhs = kernels::conv2d(&sum, &w, None, 1, 1).unwrap();
        let rhs = kernels::add(
            &kernels::conv2d(&x1, &w, None, 1, 1).unwrap(),
            &kernels::conv2d(&x2, &w, None, 1, 1).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn max_pool_dominates_avg_pool(c in 1usize..3, hw in 2usize..8, s in any::<u64>()) {
        let x = Tensor::randn(vec![1, c, hw, hw], 1.0, s);
        let window = 2.min(hw);
        let mx = kernels::max_pool2d(&x, window, 1).unwrap();
        let av = kernels::avg_pool2d(&x, window, 1).unwrap();
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a);
        }
    }

    // --- Recurrent ---

    #[test]
    fn lstm_outputs_bounded(seq in 1usize..6, hidden in 1usize..8, s in any::<u64>()) {
        let x = Tensor::randn(vec![seq, 1, 4], 2.0, s);
        let w_ih = Tensor::randn(vec![4 * hidden, 4], 1.0, s ^ 1);
        let w_hh = Tensor::randn(vec![4 * hidden, hidden], 1.0, s ^ 2);
        let b = Tensor::randn(vec![4 * hidden], 1.0, s ^ 3);
        let (out, state) = kernels::lstm(&x, &w_ih, &w_hh, &b).unwrap();
        prop_assert!(out.data().iter().all(|v| v.abs() <= 1.0 && v.is_finite()));
        prop_assert!(state.h.data().iter().all(|v| v.abs() <= 1.0));
    }
}
