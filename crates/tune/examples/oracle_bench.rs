//! Micro-benchmark for the tuner's memoized candidate oracle.
//!
//! A schedule search evaluates thousands of placements of the same
//! compiled subgraphs. The naive oracle calls
//! [`duet_runtime::measure_latency`] per candidate, which re-walks every
//! compiled kernel to price each subgraph (dominant for kernel-rich
//! models like ResNet-50). [`duet_tune::Oracle`] memoizes the
//! per-(subgraph, device) prices once and replays only the
//! list-scheduling loop. This bench measures that speedup — quoted in
//! EXPERIMENTS.md — and cross-checks that both oracles agree bitwise on
//! every candidate:
//!
//! ```text
//! cargo run --release -p duet-tune --example oracle_bench
//! ```

use std::time::Instant;

use duet_core::Duet;
use duet_device::DeviceKind;
use duet_models::zoo_model;
use duet_runtime::{measure_latency, Placed};
use duet_tune::Oracle;

fn main() {
    for name in ["resnet50", "wide_and_deep"] {
        let g = zoo_model(name).unwrap();
        let engine = Duet::builder().build(&g).unwrap();
        let units = engine.units();
        let n = units.len();
        let candidates: Vec<Vec<DeviceKind>> = (0..2000u64)
            .map(|i| {
                // Cheap deterministic pseudo-random masks.
                let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD0E7;
                (0..n)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x & 1 == 0 {
                            DeviceKind::Cpu
                        } else {
                            DeviceKind::Gpu
                        }
                    })
                    .collect()
            })
            .collect();

        let t0 = Instant::now();
        let naive: Vec<f64> = candidates
            .iter()
            .map(|devices| {
                let placed: Vec<Placed> = units
                    .iter()
                    .zip(devices)
                    .map(|(u, &device)| Placed {
                        sg: u.sg.clone(),
                        device,
                    })
                    .collect();
                measure_latency(engine.graph(), &placed, engine.system())
            })
            .collect();
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

        let subgraphs: Vec<_> = units.iter().map(|u| u.sg.clone()).collect();
        let t1 = Instant::now();
        let oracle = Oracle::analytic(engine.graph(), &subgraphs, engine.system());
        let memoized: Vec<f64> = candidates.iter().map(|c| oracle.evaluate(c)).collect();
        let memo_ms = t1.elapsed().as_secs_f64() * 1e3;

        for (a, b) in naive.iter().zip(&memoized) {
            assert_eq!(a.to_bits(), b.to_bits(), "oracles disagree");
        }
        println!(
            "{name}: {n} subgraphs, {} candidates | naive {naive_ms:.1} ms | memoized {memo_ms:.1} ms (incl. setup) | speedup {:.1}x",
            candidates.len(),
            naive_ms / memo_ms,
        );
    }
}
