//! On-disk cache of promoted plans.
//!
//! One JSON file per (model, graph fingerprint, batch) —
//! `{model}-{fingerprint:016x}-b{batch}.json` — holding the exported
//! [`SchedulePlan`]. Serving looks plans up by the *deployed* graph, so
//! a cache hit is only returned when the stored fingerprint and batch
//! match (a plan for last week's model shape never mis-applies).
//! Callers are expected to store only plans the promotion gate accepted.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use duet_core::{fingerprint, SchedulePlan};
use duet_ir::Graph;

/// A directory of promoted plans.
#[derive(Debug, Clone)]
pub struct TuneCache {
    dir: PathBuf,
}

impl TuneCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(TuneCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stable file name for one plan.
    pub fn key(plan: &SchedulePlan) -> String {
        format!(
            "{}-{:016x}-b{}.json",
            plan.model, plan.fingerprint, plan.batch
        )
    }

    /// Persist `plan`, returning its path. Overwrites any previous plan
    /// for the same (model, fingerprint, batch).
    pub fn store(&self, plan: &SchedulePlan) -> io::Result<PathBuf> {
        let path = self.dir.join(Self::key(plan));
        fs::write(&path, plan.to_json())?;
        Ok(path)
    }

    /// Load the plan for (model, fingerprint, batch), if present and
    /// parseable.
    pub fn load(&self, model: &str, fingerprint: u64, batch: usize) -> Option<SchedulePlan> {
        let path = self
            .dir
            .join(format!("{model}-{fingerprint:016x}-b{batch}.json"));
        let text = fs::read_to_string(path).ok()?;
        SchedulePlan::from_json(&text).ok()
    }

    /// Load a cached plan applicable to `graph` (fingerprint + coverage
    /// validated), or `None`.
    pub fn load_for(&self, graph: &Graph) -> Option<SchedulePlan> {
        let plan = self.load(
            &graph.name,
            fingerprint(graph),
            graph.leading_batch().unwrap_or(1),
        )?;
        plan.validate_against(graph).ok()?;
        Some(plan)
    }

    /// Every plan currently in the cache (skipping unparseable files).
    pub fn entries(&self) -> Vec<SchedulePlan> {
        let Ok(rd) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut plans: Vec<SchedulePlan> = rd
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .filter_map(|e| fs::read_to_string(e.path()).ok())
            .filter_map(|t| SchedulePlan::from_json(&t).ok())
            .collect();
        plans.sort_by(|a, b| (&a.model, a.batch).cmp(&(&b.model, b.batch)));
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::Duet;
    use duet_models::zoo_model;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("duet-tune-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trips_a_plan_by_graph() {
        let g = zoo_model("wide_and_deep").unwrap();
        let engine = Duet::builder().build(&g).unwrap();
        let plan = engine.export_plan();
        let cache = TuneCache::open(tmpdir("rt")).unwrap();
        let path = cache.store(&plan).unwrap();
        assert!(path.exists());
        let loaded = cache.load_for(&g).expect("cache hit");
        assert_eq!(loaded.to_json(), plan.to_json());
        assert_eq!(cache.entries().len(), 1);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn misses_on_a_different_graph() {
        let g = zoo_model("wide_and_deep").unwrap();
        let other = zoo_model("siamese").unwrap();
        let engine = Duet::builder().build(&g).unwrap();
        let cache = TuneCache::open(tmpdir("miss")).unwrap();
        cache.store(&engine.export_plan()).unwrap();
        assert!(cache.load_for(&other).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
