//! Pluggable subgraph cost models for the tuner's oracle.
//!
//! The search oracle prices every candidate from a dense
//! per-(subgraph, device) table (see [`crate::Oracle`]); this module
//! decides what goes *into* that table. [`AnalyticCostModel`] reproduces
//! the simulator's roofline pricing bit-for-bit. [`FittedCostModel`]
//! corrects it with measurements: the analytic model prices every kernel
//! from the same formula, so its errors are correlated *within an
//! operator family* — one affine correction per (device,
//! [`KernelClass`]) captures most of the systematic bias while needing
//! only a handful of samples to fit. Classes with fewer than
//! [`FittedCostModel::MIN_SAMPLES`] samples (or a degenerate fit) fall
//! back to the analytic price.

use std::collections::HashMap;

use duet_compiler::{CompiledSubgraph, KernelClass};
use duet_device::{DeviceKind, SystemModel};
use duet_ir::{Graph, NodeId};
use duet_runtime::{subgraph_exec_time_us, SubgraphProfile};
use duet_telemetry::{Span, SpanKind};

/// Prices a compiled subgraph on a device.
///
/// `Sync` so the oracle can fill its execution table from parallel
/// workers.
pub trait CostModel: Sync {
    /// Short display name ("analytic", "fitted").
    fn name(&self) -> &'static str;
    /// Predicted execution time of `sg` on `device`, microseconds.
    fn subgraph_time_us(&self, device: DeviceKind, sg: &CompiledSubgraph) -> f64;
}

/// The simulator's own pricing: per-kernel roofline under the system's
/// device models. An oracle built from this model is bit-identical to
/// `measure_latency`.
#[derive(Debug, Clone)]
pub struct AnalyticCostModel {
    system: SystemModel,
}

impl AnalyticCostModel {
    pub fn new(system: SystemModel) -> Self {
        AnalyticCostModel { system }
    }
}

impl CostModel for AnalyticCostModel {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn subgraph_time_us(&self, device: DeviceKind, sg: &CompiledSubgraph) -> f64 {
        subgraph_exec_time_us(&self.system, device, sg)
    }
}

/// One affine correction: `measured ≈ scale · analytic + offset_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine {
    pub scale: f64,
    pub offset_us: f64,
}

impl Affine {
    fn predict(&self, analytic_us: f64) -> f64 {
        self.scale * analytic_us + self.offset_us
    }
}

/// Accumulates (analytic, measured) pairs per (device, kernel class)
/// from whatever measurement sources are at hand: offline profiler
/// means and/or `ExecSubgraph` telemetry spans recorded by live
/// executor runs.
///
/// Measurements arrive at *subgraph* granularity; they are distributed
/// over the subgraph's kernels proportionally to each kernel's analytic
/// share, which keeps the per-class buckets populated even when every
/// subgraph mixes classes.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    samples: HashMap<(DeviceKind, KernelClass), Vec<(f64, f64)>>,
}

impl Calibration {
    pub fn new() -> Self {
        Calibration::default()
    }

    /// Record one raw (analytic, measured) kernel sample.
    pub fn add_sample(
        &mut self,
        device: DeviceKind,
        class: KernelClass,
        analytic_us: f64,
        measured_us: f64,
    ) {
        if analytic_us.is_finite() && measured_us.is_finite() && measured_us > 0.0 {
            self.samples
                .entry((device, class))
                .or_default()
                .push((analytic_us, measured_us));
        }
    }

    /// Distribute one measured whole-subgraph time over its kernels
    /// proportionally to their analytic prices.
    pub fn add_subgraph(
        &mut self,
        system: &SystemModel,
        graph: &Graph,
        device: DeviceKind,
        sg: &CompiledSubgraph,
        measured_us: f64,
    ) {
        let total = subgraph_exec_time_us(system, device, sg);
        if !total.is_finite() || total <= 0.0 || !measured_us.is_finite() || measured_us <= 0.0 {
            return;
        }
        for k in &sg.kernels {
            let analytic = system.exec_time_us(device, &k.cost);
            self.add_sample(
                device,
                k.class(graph),
                analytic,
                measured_us * analytic / total,
            );
        }
    }

    /// Harvest the offline profiler's per-device means (both devices are
    /// always profiled, so this populates CPU and GPU buckets at once).
    pub fn add_profiles(
        &mut self,
        system: &SystemModel,
        graph: &Graph,
        subgraphs: &[CompiledSubgraph],
        profiles: &[SubgraphProfile],
    ) {
        for (sg, p) in subgraphs.iter().zip(profiles) {
            self.add_subgraph(system, graph, DeviceKind::Cpu, sg, p.cpu_time_us);
            self.add_subgraph(system, graph, DeviceKind::Gpu, sg, p.gpu_time_us);
        }
    }

    /// Harvest `ExecSubgraph` telemetry spans from live executor runs
    /// (`detail` = subgraph index, `arg0` = device, `dur_us` = measured
    /// virtual duration). Spans indexing outside `subgraphs` are
    /// ignored — the ring may hold spans from other engines.
    pub fn add_spans(
        &mut self,
        system: &SystemModel,
        graph: &Graph,
        subgraphs: &[CompiledSubgraph],
        spans: &[Span],
    ) {
        for s in spans {
            if s.kind != SpanKind::ExecSubgraph {
                continue;
            }
            let Some(sg) = subgraphs.get(s.detail as usize) else {
                continue;
            };
            let device = if s.arg0 == 0.0 {
                DeviceKind::Cpu
            } else {
                DeviceKind::Gpu
            };
            self.add_subgraph(system, graph, device, sg, s.dur_us);
        }
    }

    /// Total raw samples across all buckets.
    pub fn sample_count(&self) -> usize {
        self.samples.values().map(Vec::len).sum()
    }

    fn bucket(&self, device: DeviceKind, class: KernelClass) -> &[(f64, f64)] {
        self.samples
            .get(&(device, class))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Analytic pricing with per-(device, class) affine corrections fitted
/// by least squares from a [`Calibration`].
#[derive(Debug, Clone)]
pub struct FittedCostModel {
    system: SystemModel,
    /// Kernel anchor → class, precomputed so pricing needs no graph.
    classes: HashMap<NodeId, KernelClass>,
    fits: HashMap<(DeviceKind, KernelClass), Affine>,
}

impl FittedCostModel {
    /// Minimum samples before a (device, class) bucket is trusted.
    pub const MIN_SAMPLES: usize = 3;

    /// Fit affine corrections from `cal` for the kernels of
    /// `subgraphs`. Buckets that are thin or degenerate (no spread in
    /// the analytic predictor, negative scale) keep the identity fit —
    /// i.e. fall back to the analytic price.
    pub fn fit(
        system: SystemModel,
        graph: &Graph,
        subgraphs: &[CompiledSubgraph],
        cal: &Calibration,
    ) -> Self {
        let mut classes = HashMap::new();
        for sg in subgraphs {
            for k in &sg.kernels {
                classes.insert(k.anchor, k.class(graph));
            }
        }
        let mut fits = HashMap::new();
        for device in DeviceKind::both() {
            for class in KernelClass::ALL {
                if let Some(fit) = least_squares(cal.bucket(device, class)) {
                    fits.insert((device, class), fit);
                }
            }
        }
        FittedCostModel {
            system,
            classes,
            fits,
        }
    }

    /// Number of (device, class) buckets that got a real fit.
    pub fn fitted_buckets(&self) -> usize {
        self.fits.len()
    }

    /// The fitted correction for one bucket, if any.
    pub fn fit_for(&self, device: DeviceKind, class: KernelClass) -> Option<Affine> {
        self.fits.get(&(device, class)).copied()
    }
}

impl CostModel for FittedCostModel {
    fn name(&self) -> &'static str {
        "fitted"
    }

    fn subgraph_time_us(&self, device: DeviceKind, sg: &CompiledSubgraph) -> f64 {
        sg.kernels
            .iter()
            .map(|k| {
                let analytic = self.system.exec_time_us(device, &k.cost);
                let class = self
                    .classes
                    .get(&k.anchor)
                    .copied()
                    .unwrap_or(KernelClass::Elementwise);
                match self.fits.get(&(device, class)) {
                    // A fit can extrapolate below zero on tiny kernels;
                    // the simulator needs positive durations, so floor
                    // at a fraction of the analytic price.
                    Some(fit) => fit.predict(analytic).max(0.05 * analytic),
                    None => analytic,
                }
            })
            .sum()
    }
}

/// Ordinary least squares `y = a·x + b`; `None` when the bucket is thin,
/// the predictor has no spread, or the slope comes out non-positive
/// (a pathological fit the analytic fallback beats).
fn least_squares(samples: &[(f64, f64)]) -> Option<Affine> {
    if samples.len() < FittedCostModel::MIN_SAMPLES {
        return None;
    }
    let n = samples.len() as f64;
    let (sx, sy) = samples
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (mx, my) = (sx / n, sy / n);
    let (sxx, sxy) = samples.iter().fold((0.0, 0.0), |(sxx, sxy), &(x, y)| {
        (sxx + (x - mx) * (x - mx), sxy + (x - mx) * (y - my))
    });
    if sxx <= 1e-12 {
        return None;
    }
    let scale = sxy / sxx;
    if !scale.is_finite() || scale <= 0.0 {
        return None;
    }
    Some(Affine {
        scale,
        offset_us: my - scale * mx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_compiler::Compiler;
    use duet_ir::{GraphBuilder, Op};

    fn mlp() -> (Graph, Vec<CompiledSubgraph>) {
        let mut b = GraphBuilder::new("mlp", 1);
        let x = b.input("x", vec![1, 64]);
        let h = b.dense("fc1", x, 128, Some(Op::Relu)).unwrap();
        let y = b.dense("fc2", h, 8, None).unwrap();
        let g = b.finish(&[y]).unwrap();
        let sg = Compiler::default().compile_nodes(&g, &g.compute_ids(), "all");
        (g, vec![sg])
    }

    #[test]
    fn analytic_model_matches_simulator_pricing() {
        let (_, sgs) = mlp();
        let sys = SystemModel::paper_server();
        let m = AnalyticCostModel::new(sys.clone());
        for d in DeviceKind::both() {
            let got = m.subgraph_time_us(d, &sgs[0]);
            let want = subgraph_exec_time_us(&sys, d, &sgs[0]);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn thin_calibration_falls_back_to_analytic() {
        let (g, sgs) = mlp();
        let sys = SystemModel::paper_server();
        let cal = Calibration::new(); // no samples at all
        let m = FittedCostModel::fit(sys.clone(), &g, &sgs, &cal);
        assert_eq!(m.fitted_buckets(), 0);
        for d in DeviceKind::both() {
            let got = m.subgraph_time_us(d, &sgs[0]);
            let want = subgraph_exec_time_us(&sys, d, &sgs[0]);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fit_recovers_a_planted_affine_bias() {
        let (g, sgs) = mlp();
        let sys = SystemModel::paper_server();
        // Plant measured = 1.5 * analytic + 2 µs on the CPU/Gemm bucket
        // via whole-subgraph observations of scaled analytic times.
        let mut cal = Calibration::new();
        for k in &sgs[0].kernels {
            let a = sys.exec_time_us(DeviceKind::Cpu, &k.cost);
            for jitter in [0.5, 1.0, 2.0] {
                cal.add_sample(
                    DeviceKind::Cpu,
                    k.class(&g),
                    a * jitter,
                    1.5 * (a * jitter) + 2.0,
                );
            }
        }
        let m = FittedCostModel::fit(sys.clone(), &g, &sgs, &cal);
        assert!(m.fitted_buckets() >= 1);
        let fit = m.fit_for(DeviceKind::Cpu, KernelClass::Gemm).unwrap();
        assert!((fit.scale - 1.5).abs() < 1e-9, "scale {}", fit.scale);
        assert!(
            (fit.offset_us - 2.0).abs() < 1e-6,
            "offset {}",
            fit.offset_us
        );
        // And the prediction moves in the direction of the bias.
        let analytic = subgraph_exec_time_us(&sys, DeviceKind::Cpu, &sgs[0]);
        assert!(m.subgraph_time_us(DeviceKind::Cpu, &sgs[0]) > analytic);
        // GPU bucket was never calibrated — untouched.
        let gpu = subgraph_exec_time_us(&sys, DeviceKind::Gpu, &sgs[0]);
        assert_eq!(
            m.subgraph_time_us(DeviceKind::Gpu, &sgs[0]).to_bits(),
            gpu.to_bits()
        );
    }

    #[test]
    fn spans_calibrate_the_model() {
        let (g, sgs) = mlp();
        let sys = SystemModel::paper_server();
        let analytic = subgraph_exec_time_us(&sys, DeviceKind::Gpu, &sgs[0]);
        let mk = |dur: f64| Span {
            seq: 0,
            kind: SpanKind::ExecSubgraph,
            detail: 0,
            start_us: 0.0,
            dur_us: dur,
            arg0: 1.0, // GPU
            arg1: 0.0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        };
        let spans = vec![
            mk(2.0 * analytic),
            mk(2.0 * analytic * 1.01),
            mk(2.0 * analytic * 0.99),
        ];
        let mut cal = Calibration::new();
        cal.add_spans(&sys, &g, &sgs, &spans);
        assert!(cal.sample_count() > 0);
    }
}
