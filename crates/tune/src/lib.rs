//! `duet-tune`: simulator-oracle schedule autotuning.
//!
//! Algorithm 1 (greedy critical-path placement + correction) is fast and
//! good, but it is one point in a large placement space — the D215
//! optimality-gap lint shows several zoo models sitting 1.5–1.6× above
//! the critical-path lower bound. This crate searches that space with
//! the deterministic virtual-clock simulator as the objective oracle:
//!
//! * [`SearchStrategy`] — pluggable search over per-subgraph device
//!   vectors. Ships three implementations: a critical-path-first
//!   constructive baseline, beam search over single-device flips, and
//!   simulated annealing over flip/swap neighborhoods. All are seeded
//!   with Algorithm 1's placement, so the tuner is *never worse* by
//!   construction.
//! * [`CostModel`] — the oracle's pricing hook. [`AnalyticCostModel`]
//!   reproduces the simulator's roofline pricing exactly;
//!   [`FittedCostModel`] calibrates one affine correction per
//!   (device, kernel class) from profiler runs and executor telemetry
//!   spans, falling back to the analytic price where samples are thin.
//!   The fitted model only *guides* search — the final ranking and every
//!   reported latency come from the analytic oracle, so promoted plans
//!   stay consistent with what the D503 occupancy check re-derives.
//! * Proven-plan promotion — a winning placement is instantiated via
//!   [`duet_core::Duet::with_devices`] (which re-applies the §VI-E
//!   single-device fallback guardrail), then must pass the D2xx plan
//!   lints *and* the exhaustive D5xx model check before [`TuneCache`]
//!   persists it for serving to hot-swap.
//!
//! Entry point: [`tune`] (or the `duet tune <model>` CLI).

pub mod cache;
pub mod cost;
pub mod oracle;
pub mod strategy;
pub mod tuner;

pub use cache::TuneCache;
pub use cost::{Affine, AnalyticCostModel, Calibration, CostModel, FittedCostModel};
pub use oracle::Oracle;
pub use strategy::{
    BeamSearch, CriticalPathFirst, SearchContext, SearchResult, SearchStrategy, SimulatedAnnealing,
};
pub use tuner::{tune, tune_drifted, StrategyReport, TuneConfig, TuneOutcome};
