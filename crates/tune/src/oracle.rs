//! The search objective: a memoized candidate simulator with telemetry.
//!
//! Wraps [`duet_runtime::CandidateSim`] — dependency structure, transfer
//! prices and the per-(subgraph, device) execution table are computed
//! once, so each candidate evaluation is a pure list-scheduling replay.
//! Every evaluation increments `duet_tune_candidates_total` and feeds
//! the `duet_tune_oracle_wall_us` histogram, which is what the CLI's
//! "search cost" report and the CI overhead gate read.

use duet_compiler::CompiledSubgraph;
use duet_device::{DeviceKind, SystemModel};
use duet_ir::Graph;
use duet_runtime::CandidateSim;
use duet_telemetry::registry::{TUNE_CANDIDATES, TUNE_ORACLE_WALL_US};

use crate::cost::CostModel;

/// A reusable placement evaluator over one fixed set of compiled
/// subgraphs.
#[derive(Debug, Clone)]
pub struct Oracle {
    sim: CandidateSim,
    /// Which cost model filled the execution table (for reports).
    model_name: &'static str,
}

impl Oracle {
    /// Analytic oracle — bit-identical to `measure_latency` for every
    /// placement (the property the never-worse guarantee rides on).
    pub fn analytic(graph: &Graph, subgraphs: &[CompiledSubgraph], system: &SystemModel) -> Self {
        Oracle {
            sim: CandidateSim::new(graph, subgraphs, system),
            model_name: "analytic",
        }
    }

    /// Oracle with the execution table priced by `model`. Transfer
    /// prices stay analytic (the interconnect is not the kernel cost
    /// model's to correct).
    pub fn with_cost_model(
        graph: &Graph,
        subgraphs: &[CompiledSubgraph],
        system: &SystemModel,
        model: &dyn CostModel,
    ) -> Self {
        Oracle {
            sim: CandidateSim::with_exec_time(graph, subgraphs, system, |device, sg| {
                model.subgraph_time_us(device, sg)
            }),
            model_name: model.name(),
        }
    }

    /// Number of subgraphs a candidate must place.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// True when the oracle covers no subgraphs.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Name of the cost model pricing the execution table.
    pub fn model_name(&self) -> &'static str {
        self.model_name
    }

    /// Memoized execution time of subgraph `i` on `device`, µs.
    pub fn exec_time_us(&self, i: usize, device: DeviceKind) -> f64 {
        self.sim.exec_time_us(i, device)
    }

    /// Simulated end-to-end makespan of one placement, µs.
    pub fn evaluate(&self, devices: &[DeviceKind]) -> f64 {
        let t0 = std::time::Instant::now();
        let makespan = self.sim.makespan(devices);
        TUNE_CANDIDATES.inc();
        TUNE_ORACLE_WALL_US.observe_us(t0.elapsed().as_secs_f64() * 1e6);
        makespan
    }

    /// Evaluate a batch of candidates across threads, results in input
    /// order. Each evaluation is a pure function of (table, devices), so
    /// parallel scheduling cannot perturb the values — batch results are
    /// bitwise equal to sequential `evaluate` calls.
    pub fn evaluate_batch(&self, candidates: &[Vec<DeviceKind>]) -> Vec<f64> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(candidates.len().max(1));
        if threads <= 1 || candidates.len() < 8 {
            return candidates.iter().map(|c| self.evaluate(c)).collect();
        }
        let t0 = std::time::Instant::now();
        let mut out = vec![0.0f64; candidates.len()];
        let chunk = candidates.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (slot, work) in out.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
                scope.spawn(move || {
                    for (o, c) in slot.iter_mut().zip(work) {
                        *o = self.sim.makespan(c);
                    }
                });
            }
        });
        TUNE_CANDIDATES.add(candidates.len() as u64);
        TUNE_ORACLE_WALL_US.observe_us(t0.elapsed().as_secs_f64() * 1e6);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_compiler::Compiler;
    use duet_ir::{GraphBuilder, Op};

    fn fixture() -> (Graph, Vec<CompiledSubgraph>, SystemModel) {
        let mut b = GraphBuilder::new("fixture", 1);
        let x = b.input("x", vec![1, 256]);
        let l = b.dense("left", x, 512, Some(Op::Relu)).unwrap();
        let r = b.dense("right", x, 512, Some(Op::Tanh)).unwrap();
        let cat = b.op("cat", Op::Concat { axis: 1 }, &[l, r]).unwrap();
        let y = b.dense("head", cat, 8, None).unwrap();
        let g = b.finish(&[y]).unwrap();
        let c = Compiler::default();
        let pick = |prefix: &str| {
            g.compute_ids()
                .into_iter()
                .filter(|&i| g.node(i).label.starts_with(prefix))
                .collect::<Vec<_>>()
        };
        let rest = g
            .compute_ids()
            .into_iter()
            .filter(|&i| {
                !g.node(i).label.starts_with("left") && !g.node(i).label.starts_with("right")
            })
            .collect::<Vec<_>>();
        let sgs = vec![
            c.compile_nodes(&g, &pick("left"), "left"),
            c.compile_nodes(&g, &pick("right"), "right"),
            c.compile_nodes(&g, &rest, "head"),
        ];
        (g, sgs, SystemModel::paper_server())
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let (g, sgs, sys) = fixture();
        let oracle = Oracle::analytic(&g, &sgs, &sys);
        let candidates: Vec<Vec<DeviceKind>> = (0u32..8)
            .flat_map(|mask| {
                // Repeat each mask a few times to force the parallel path.
                std::iter::repeat_with(move || {
                    (0..3)
                        .map(|i| {
                            if mask >> i & 1 == 0 {
                                DeviceKind::Cpu
                            } else {
                                DeviceKind::Gpu
                            }
                        })
                        .collect()
                })
                .take(4)
            })
            .collect();
        let batch = oracle.evaluate_batch(&candidates);
        for (c, &b) in candidates.iter().zip(&batch) {
            assert_eq!(b.to_bits(), oracle.evaluate(c).to_bits());
        }
    }
}
