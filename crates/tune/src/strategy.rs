//! Search strategies over per-subgraph device vectors.
//!
//! Every strategy receives the same [`SearchContext`]: the oracle, a
//! fixed RNG seed (same seed ⇒ bit-identical winning plan — CI asserts
//! this), an evaluation budget, and Algorithm 1's placement as the
//! starting point. Strategies score the starting point first and never
//! return anything worse, so the tuner's never-worse guarantee holds
//! per strategy, not just after the final min.

use duet_device::DeviceKind;
use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::oracle::Oracle;

/// Everything a strategy needs for one search run.
pub struct SearchContext<'a> {
    pub oracle: &'a Oracle,
    /// Algorithm 1's device vector — the seed placement.
    pub seed_devices: &'a [DeviceKind],
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Maximum oracle evaluations this strategy may spend.
    pub budget: usize,
}

/// One strategy's best placement and what it cost to find.
#[derive(Debug, Clone)]
pub struct SearchResult {
    pub devices: Vec<DeviceKind>,
    /// Oracle makespan of `devices`, µs (under the *search* oracle —
    /// the tuner re-scores winners analytically).
    pub makespan_us: f64,
    /// Oracle evaluations spent.
    pub evaluated: usize,
}

/// A placement search procedure.
pub trait SearchStrategy: Sync {
    /// Short display name ("beam", "anneal", "cp-first").
    fn name(&self) -> &'static str;
    fn search(&self, cx: &SearchContext<'_>) -> SearchResult;
}

fn flipped(devices: &[DeviceKind], i: usize) -> Vec<DeviceKind> {
    let mut d = devices.to_vec();
    d[i] = d[i].other();
    d
}

/// Constructive baseline: place every subgraph on its faster device,
/// then sweep subgraphs in descending execution-time order (the
/// critical path's likeliest members first), keeping any single flip
/// that improves the simulated makespan. No randomness — the seed is
/// unused.
#[derive(Debug, Clone, Copy, Default)]
pub struct CriticalPathFirst;

impl SearchStrategy for CriticalPathFirst {
    fn name(&self) -> &'static str {
        "cp-first"
    }

    fn search(&self, cx: &SearchContext<'_>) -> SearchResult {
        let oracle = cx.oracle;
        let n = oracle.len();
        let mut evaluated = 1;
        let mut best = cx.seed_devices.to_vec();
        let mut best_us = oracle.evaluate(&best);

        // Greedy start: each subgraph on its faster device.
        let greedy: Vec<DeviceKind> = (0..n)
            .map(|i| {
                if oracle.exec_time_us(i, DeviceKind::Cpu)
                    <= oracle.exec_time_us(i, DeviceKind::Gpu)
                {
                    DeviceKind::Cpu
                } else {
                    DeviceKind::Gpu
                }
            })
            .collect();
        let greedy_us = oracle.evaluate(&greedy);
        evaluated += 1;
        if greedy_us < best_us {
            best = greedy;
            best_us = greedy_us;
        }

        // Heaviest subgraphs first: they bound the critical path.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let w = |i: usize| {
                oracle
                    .exec_time_us(i, DeviceKind::Cpu)
                    .min(oracle.exec_time_us(i, DeviceKind::Gpu))
            };
            w(b).total_cmp(&w(a)).then(a.cmp(&b))
        });
        let mut improved = true;
        while improved && evaluated < cx.budget {
            improved = false;
            for &i in &order {
                if evaluated >= cx.budget {
                    break;
                }
                let cand = flipped(&best, i);
                let us = oracle.evaluate(&cand);
                evaluated += 1;
                if us < best_us {
                    best = cand;
                    best_us = us;
                    improved = true;
                }
            }
        }
        SearchResult {
            devices: best,
            makespan_us: best_us,
            evaluated,
        }
    }
}

/// Beam search over single-device flips: each round expands every beam
/// member's full flip neighborhood (evaluated as one parallel batch),
/// keeps the `width` best distinct placements, and stops when a round
/// fails to improve the incumbent. Deterministic — candidate order is
/// (beam index, subgraph index) and ties break toward earlier
/// candidates.
#[derive(Debug, Clone, Copy)]
pub struct BeamSearch {
    pub width: usize,
}

impl Default for BeamSearch {
    fn default() -> Self {
        BeamSearch { width: 4 }
    }
}

impl SearchStrategy for BeamSearch {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn search(&self, cx: &SearchContext<'_>) -> SearchResult {
        let oracle = cx.oracle;
        let n = oracle.len();
        let width = self.width.max(1);
        let mut evaluated = 1;
        let seed_us = oracle.evaluate(cx.seed_devices);
        let mut beam: Vec<(f64, Vec<DeviceKind>)> = vec![(seed_us, cx.seed_devices.to_vec())];
        let (mut best, mut best_us) = (cx.seed_devices.to_vec(), seed_us);
        loop {
            let mut frontier: Vec<Vec<DeviceKind>> = Vec::with_capacity(beam.len() * n);
            for (_, member) in &beam {
                for i in 0..n {
                    frontier.push(flipped(member, i));
                }
            }
            frontier.truncate(cx.budget.saturating_sub(evaluated));
            if frontier.is_empty() {
                break;
            }
            let scores = oracle.evaluate_batch(&frontier);
            evaluated += frontier.len();
            let mut pool: Vec<(f64, Vec<DeviceKind>)> = scores.into_iter().zip(frontier).collect();
            pool.extend(beam.iter().cloned());
            // Stable sort keeps earlier candidates ahead on score ties,
            // which is what makes the search order-deterministic.
            pool.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut seen: std::collections::HashSet<Vec<DeviceKind>> =
                std::collections::HashSet::new();
            pool.retain(|(_, d)| seen.insert(d.clone()));
            pool.truncate(width);
            let improved = pool[0].0 < best_us;
            if improved {
                best_us = pool[0].0;
                best = pool[0].1.clone();
            }
            beam = pool;
            if !improved || evaluated >= cx.budget {
                break;
            }
        }
        SearchResult {
            devices: best,
            makespan_us: best_us,
            evaluated,
        }
    }
}

/// Simulated annealing over flip/swap neighborhoods with a geometric
/// cooling schedule and Metropolis acceptance. Runs `restarts`
/// independent chains from the seed placement, each on a sub-seed
/// derived from the context seed, so the whole run is a pure function
/// of (oracle, seed placement, seed).
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    pub iters: usize,
    pub restarts: usize,
    /// Initial temperature as a fraction of the seed makespan.
    pub t0_frac: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iters: 400,
            restarts: 3,
            t0_frac: 0.05,
        }
    }
}

impl SearchStrategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn search(&self, cx: &SearchContext<'_>) -> SearchResult {
        let oracle = cx.oracle;
        let n = oracle.len();
        let mut evaluated = 1;
        let seed_us = oracle.evaluate(cx.seed_devices);
        let (mut best, mut best_us) = (cx.seed_devices.to_vec(), seed_us);
        let t0 = (self.t0_frac * seed_us).max(1e-9);
        for restart in 0..self.restarts.max(1) {
            let mut rng = SmallRng::seed_from_u64(
                cx.seed
                    .wrapping_add((restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let mut cur = cx.seed_devices.to_vec();
            let mut cur_us = seed_us;
            for step in 0..self.iters {
                if evaluated >= cx.budget {
                    break;
                }
                let mut cand = cur.clone();
                if n >= 2 && rng.gen_bool(0.3) {
                    // Swap move: exchange the devices of two subgraphs
                    // (preserves the CPU/GPU load split).
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    cand.swap(a, b);
                } else {
                    let i = rng.gen_range(0..n);
                    cand[i] = cand[i].other();
                }
                if cand == cur {
                    continue;
                }
                let cand_us = oracle.evaluate(&cand);
                evaluated += 1;
                let temp = t0 * (1e-3f64).powf(step as f64 / self.iters.max(1) as f64);
                let accept = cand_us <= cur_us || {
                    let p = (-(cand_us - cur_us) / temp).exp();
                    rng.gen_bool(p.clamp(0.0, 1.0))
                };
                if accept {
                    cur = cand;
                    cur_us = cand_us;
                    if cur_us < best_us {
                        best = cur.clone();
                        best_us = cur_us;
                    }
                }
            }
            if evaluated >= cx.budget {
                break;
            }
        }
        SearchResult {
            devices: best,
            makespan_us: best_us,
            evaluated,
        }
    }
}

/// The tuner's default strategy portfolio, in report order.
pub fn default_strategies() -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(CriticalPathFirst),
        Box::new(BeamSearch::default()),
        Box::new(SimulatedAnnealing::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_compiler::{CompiledSubgraph, Compiler};
    use duet_device::SystemModel;
    use duet_ir::{Graph, GraphBuilder, Op};

    fn fixture() -> (Graph, Vec<CompiledSubgraph>, SystemModel) {
        let mut b = GraphBuilder::new("fixture", 1);
        let x = b.input("x", vec![1, 256]);
        let l = b.dense("left", x, 2048, Some(Op::Relu)).unwrap();
        let r = b.dense("right", x, 2048, Some(Op::Tanh)).unwrap();
        let cat = b.op("cat", Op::Concat { axis: 1 }, &[l, r]).unwrap();
        let y = b.dense("head", cat, 8, None).unwrap();
        let g = b.finish(&[y]).unwrap();
        let c = Compiler::default();
        let pick = |prefix: &str| {
            g.compute_ids()
                .into_iter()
                .filter(|&i| g.node(i).label.starts_with(prefix))
                .collect::<Vec<_>>()
        };
        let rest = g
            .compute_ids()
            .into_iter()
            .filter(|&i| {
                !g.node(i).label.starts_with("left") && !g.node(i).label.starts_with("right")
            })
            .collect::<Vec<_>>();
        let sgs = vec![
            c.compile_nodes(&g, &pick("left"), "left"),
            c.compile_nodes(&g, &pick("right"), "right"),
            c.compile_nodes(&g, &rest, "head"),
        ];
        (g, sgs, SystemModel::paper_server())
    }

    #[test]
    fn every_strategy_is_never_worse_than_the_seed() {
        let (g, sgs, sys) = fixture();
        let oracle = Oracle::analytic(&g, &sgs, &sys);
        // Deliberately bad seed: everything on the CPU.
        let seed_devices = vec![DeviceKind::Cpu; 3];
        let seed_us = oracle.evaluate(&seed_devices);
        for s in default_strategies() {
            let cx = SearchContext {
                oracle: &oracle,
                seed_devices: &seed_devices,
                seed: 7,
                budget: 500,
            };
            let r = s.search(&cx);
            assert!(
                r.makespan_us <= seed_us,
                "{} regressed: {} > {seed_us}",
                s.name(),
                r.makespan_us
            );
            assert!(r.evaluated <= 501, "{} blew the budget", s.name());
            // The reported makespan is the placement's real score.
            assert_eq!(
                r.makespan_us.to_bits(),
                oracle.evaluate(&r.devices).to_bits()
            );
        }
    }

    #[test]
    fn same_seed_same_result() {
        let (g, sgs, sys) = fixture();
        let oracle = Oracle::analytic(&g, &sgs, &sys);
        let seed_devices = vec![DeviceKind::Gpu; 3];
        for s in default_strategies() {
            let run = || {
                s.search(&SearchContext {
                    oracle: &oracle,
                    seed_devices: &seed_devices,
                    seed: 42,
                    budget: 300,
                })
            };
            let (a, b) = (run(), run());
            assert_eq!(a.devices, b.devices, "{} is nondeterministic", s.name());
            assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
            assert_eq!(a.evaluated, b.evaluated);
        }
    }
}
