//! The tuning pipeline: calibrate → search → re-score → prove → report.
//!
//! [`tune`] runs every strategy in the portfolio from Algorithm 1's
//! placement, re-scores each winner under the *analytic* oracle (the
//! fitted model only guides search — promoted plans must claim the
//! latency the D503 occupancy check re-derives), instantiates the best
//! placement via [`Duet::with_devices`] (re-applying the §VI-E
//! single-device fallback guardrail), and gates promotion on the D2xx
//! plan lints plus the exhaustive D5xx model check. The result is
//! never worse than Algorithm 1: the seed placement is always a
//! candidate, and the guardrail catches anything that only *looks*
//! better under a miscalibrated model.

use std::time::Instant;

use duet_analysis::{lint_plan, LintConfig, ModelCheckConfig, ModelCheckOutcome, Report};
use duet_compiler::CompiledSubgraph;
use duet_core::{Duet, SchedulePlan};
use duet_device::SystemModel;
use duet_telemetry::registry::{
    TUNE_PROMOTIONS_ACCEPTED, TUNE_PROMOTIONS_REJECTED, TUNE_RUNS, TUNE_SEARCH_WALL_US,
};

use crate::cost::{Calibration, FittedCostModel};
use crate::oracle::Oracle;
use crate::strategy::{default_strategies, SearchContext};

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// RNG seed; the whole run is a pure function of (engine, config).
    pub seed: u64,
    /// Oracle-evaluation budget *per strategy*.
    pub budget: usize,
    /// Calibrate a fitted cost model from the engine's profiles (and
    /// any `ExecSubgraph` telemetry spans) to guide the search. The
    /// final ranking is analytic either way.
    pub use_fitted: bool,
    pub lint: LintConfig,
    pub check: ModelCheckConfig,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 0xD0E7,
            budget: 2000,
            use_fitted: true,
            lint: LintConfig::default(),
            check: ModelCheckConfig::default(),
        }
    }
}

/// One strategy's contribution to the run.
#[derive(Debug, Clone)]
pub struct StrategyReport {
    pub name: &'static str,
    /// Analytic makespan of the strategy's best placement, µs.
    pub makespan_us: f64,
    /// Oracle evaluations the strategy spent.
    pub evaluated: usize,
    /// Search wall time, µs.
    pub wall_us: f64,
}

/// Everything one tuning run produced.
#[derive(Debug)]
pub struct TuneOutcome {
    pub model: String,
    /// Algorithm 1's fallback-resolved latency, µs.
    pub algorithm1_us: f64,
    /// The tuned engine's fallback-resolved latency, µs.
    pub tuned_us: f64,
    /// Which strategy found the winner ("algorithm1" when nothing beat
    /// the seed placement).
    pub winner: &'static str,
    pub strategies: Vec<StrategyReport>,
    /// Total oracle evaluations across all strategies (incl. re-scores).
    pub candidates: usize,
    /// End-to-end tuning wall time, µs.
    pub wall_us: f64,
    /// Cost model that guided the search ("analytic" or "fitted").
    pub cost_model: &'static str,
    /// (device, kernel-class) buckets the fitted model calibrated.
    pub fitted_buckets: usize,
    /// Critical-path lower bound of the engine's subgraphs, µs.
    pub critical_path_lb_us: f64,
    /// Drift runs only ([`tune_drifted`]): the latency of the placement
    /// that was *actually serving* (made for the planned system),
    /// re-evaluated under the deployed system — the baseline a hot-swap
    /// competes against. `None` for offline tuning.
    pub stale_us: Option<f64>,
    /// The tuned engine (winning placement, guardrail re-applied).
    pub tuned: Duet,
    /// The tuned engine's exported plan.
    pub plan: SchedulePlan,
    /// D2xx plan-lint report for the winning plan.
    pub lint: Report,
    /// D5xx model-check outcome for the winning plan.
    pub check: ModelCheckOutcome,
    /// True when the winning plan passed both gates.
    pub promoted: bool,
}

impl TuneOutcome {
    /// Algorithm 1 latency over tuned latency (≥ 1.0 by construction).
    pub fn speedup(&self) -> f64 {
        self.algorithm1_us / self.tuned_us
    }

    /// True when the tuned plan strictly beats Algorithm 1.
    pub fn strictly_better(&self) -> bool {
        self.tuned_us < self.algorithm1_us
    }

    /// Stale-plan latency over tuned latency (drift runs only).
    pub fn speedup_vs_stale(&self) -> Option<f64> {
        self.stale_us.map(|s| s / self.tuned_us)
    }
}

impl std::fmt::Display for TuneOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tune report: {}", self.model)?;
        writeln!(
            f,
            "  algorithm 1: {:.3} ms   tuned: {:.3} ms   speedup: {:.3}x{}",
            self.algorithm1_us / 1e3,
            self.tuned_us / 1e3,
            self.speedup(),
            if self.strictly_better() { "" } else { " (tie)" },
        )?;
        if let Some(stale) = self.stale_us {
            writeln!(
                f,
                "  stale plan under deployed system: {:.3} ms   speedup vs stale: {:.3}x",
                stale / 1e3,
                stale / self.tuned_us,
            )?;
        }
        writeln!(
            f,
            "  bound: {:.3} ms ({:.2}x above)",
            self.critical_path_lb_us / 1e3,
            self.tuned_us / self.critical_path_lb_us,
        )?;
        writeln!(
            f,
            "  winner: {}   cost model: {} ({} fitted buckets)",
            self.winner, self.cost_model, self.fitted_buckets,
        )?;
        for s in &self.strategies {
            writeln!(
                f,
                "    {:<9} {:>10.3} ms   {:>6} evals   {:>8.1} ms wall",
                s.name,
                s.makespan_us / 1e3,
                s.evaluated,
                s.wall_us / 1e3,
            )?;
        }
        writeln!(
            f,
            "  search: {} candidates in {:.1} ms",
            self.candidates,
            self.wall_us / 1e3,
        )?;
        write!(
            f,
            "  promotion: {} (D2xx {}, D5xx {})",
            if self.promoted {
                "accepted"
            } else {
                "REJECTED"
            },
            if self.lint.has_errors() {
                "dirty"
            } else {
                "clean"
            },
            if self.check.report.has_errors() {
                "dirty"
            } else {
                "clean"
            },
        )
    }
}

/// Tune one engine's placement. See the module docs for the pipeline.
pub fn tune(engine: &Duet, cfg: &TuneConfig) -> TuneOutcome {
    let t0 = Instant::now();
    TUNE_RUNS.inc();
    let graph = engine.graph();
    let system = engine.system();
    let subgraphs: Vec<CompiledSubgraph> = engine.units().iter().map(|u| u.sg.clone()).collect();
    let analytic = Oracle::analytic(graph, &subgraphs, system);

    // Calibrate the search oracle from whatever measurements exist:
    // the engine's own offline profiles plus any executor spans in the
    // telemetry ring. Falls back to analytic when nothing fits.
    let (search_oracle, fitted_buckets) = if cfg.use_fitted {
        let mut cal = Calibration::new();
        let profiles: Vec<_> = engine.units().iter().map(|u| u.profile.clone()).collect();
        cal.add_profiles(system, graph, &subgraphs, &profiles);
        cal.add_spans(system, graph, &subgraphs, &duet_telemetry::spans());
        let fitted = FittedCostModel::fit(system.clone(), graph, &subgraphs, &cal);
        let buckets = fitted.fitted_buckets();
        if buckets > 0 {
            (
                Oracle::with_cost_model(graph, &subgraphs, system, &fitted),
                buckets,
            )
        } else {
            (analytic.clone(), 0)
        }
    } else {
        (analytic.clone(), 0)
    };

    let seed_devices = engine.devices().to_vec();
    let mut best_devices = seed_devices.clone();
    let mut best_us = analytic.evaluate(&seed_devices);
    let mut winner: &'static str = "algorithm1";
    let mut candidates = 1usize;
    let mut strategies = Vec::new();
    for s in default_strategies() {
        let st = Instant::now();
        let r = s.search(&SearchContext {
            oracle: &search_oracle,
            seed_devices: &seed_devices,
            seed: cfg.seed,
            budget: cfg.budget,
        });
        // Authoritative re-score: the fitted model proposes, the
        // analytic simulator disposes.
        let analytic_us = analytic.evaluate(&r.devices);
        candidates += r.evaluated + 1;
        if analytic_us < best_us {
            best_us = analytic_us;
            best_devices = r.devices.clone();
            winner = s.name();
        }
        strategies.push(StrategyReport {
            name: s.name(),
            makespan_us: analytic_us,
            evaluated: r.evaluated,
            wall_us: st.elapsed().as_secs_f64() * 1e6,
        });
    }

    // Promotion: instantiate (guardrail re-applies), lint, model-check.
    let tuned = engine.with_devices(best_devices);
    let plan = tuned.export_plan();
    let lint = lint_plan(graph, &plan.to_facts(), &cfg.lint);
    let check = tuned.check_plan(&cfg.check);
    let promoted = !lint.has_errors() && !check.report.has_errors();
    if promoted {
        TUNE_PROMOTIONS_ACCEPTED.inc();
    } else {
        TUNE_PROMOTIONS_REJECTED.inc();
    }
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    TUNE_SEARCH_WALL_US.observe_us(wall_us);
    TuneOutcome {
        model: graph.name.clone(),
        algorithm1_us: engine.latency_us(),
        tuned_us: tuned.latency_us(),
        winner,
        strategies,
        candidates,
        wall_us,
        cost_model: search_oracle.model_name(),
        fitted_buckets,
        critical_path_lb_us: engine.critical_path_lower_bound_us(),
        stale_us: None,
        tuned,
        plan,
        lint,
        check,
        promoted,
    }
}

/// Tune against a *drifted* deployment — the serving hot-swap scenario
/// (§IV-C: analytic estimates go stale). Re-profiles and re-corrects
/// under `deployed` (Algorithm 1's own drift response, so
/// `algorithm1_us` in the outcome is the *replanned* baseline, not the
/// stale one), then searches globally from that seed. The outcome's
/// `stale_us` is the currently-serving placement re-evaluated under the
/// deployed system — what keeps running if nothing is swapped, and the
/// baseline the strict-win numbers in EXPERIMENTS.md are measured
/// against.
pub fn tune_drifted(engine: &Duet, deployed: SystemModel, cfg: &TuneConfig) -> TuneOutcome {
    let stale_us = duet_runtime::measure_latency(engine.graph(), engine.placed(), &deployed);
    let replanned = engine.recorrect(deployed);
    let mut out = tune(&replanned, cfg);
    out.stale_us = Some(stale_us);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_models::zoo_model;

    #[test]
    fn tuning_wide_and_deep_is_never_worse_and_promotes() {
        let g = zoo_model("wide_and_deep").unwrap();
        let engine = Duet::builder().build(&g).unwrap();
        let out = tune(&engine, &TuneConfig::default());
        assert!(out.tuned_us <= out.algorithm1_us, "{out}");
        assert!(out.promoted, "winning plan must pass D2xx+D5xx:\n{out}");
        assert!(out.candidates > 3);
        // The promoted plan's claimed latency is the tuned engine's.
        assert_eq!(
            out.plan.expected_latency_us.to_bits(),
            out.tuned_us.to_bits()
        );
    }

    #[test]
    fn same_config_same_winner() {
        let g = zoo_model("siamese").unwrap();
        let engine = Duet::builder().build(&g).unwrap();
        let cfg = TuneConfig {
            budget: 400,
            ..TuneConfig::default()
        };
        let a = tune(&engine, &cfg);
        let b = tune(&engine, &cfg);
        assert_eq!(a.plan.to_json(), b.plan.to_json());
        assert_eq!(a.tuned_us.to_bits(), b.tuned_us.to_bits());
    }
}
