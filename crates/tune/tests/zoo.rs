//! Acceptance suite for the autotuner over the full model zoo.
//!
//! The headline empirical fact (see EXPERIMENTS.md): Algorithm 1 with
//! the §VI-E fallback guardrail is *exactly optimal* on every zoo model
//! — exhaustive enumeration (`SchedulePolicy::Ideal`) finds the same
//! makespan. So offline the tuner's job is certification (never worse,
//! ties everywhere, and it must actually *match* the enumerated
//! optimum), and its strict wins live where Algorithm 1's inputs go
//! stale: drifted deployments, where the tuned plan beats the
//! still-running stale plan on most of the zoo.

use std::sync::OnceLock;

use duet_analysis::{lint_plan, LintConfig, ModelCheckConfig};
use duet_core::{Duet, SchedulePolicy};
use duet_device::{DeviceKind, SystemModel};
use duet_models::{input_feeds, zoo_model};
use duet_tune::{
    tune, tune_drifted, BeamSearch, CriticalPathFirst, Oracle, SearchContext, SearchStrategy,
    SimulatedAnnealing, TuneConfig,
};
use proptest::prelude::*;

const ZOO: [&str; 8] = [
    "wide_and_deep",
    "siamese",
    "mtdnn",
    "resnet18",
    "resnet50",
    "vgg16",
    "mobilenet",
    "squeezenet",
];

fn engine_for(name: &str) -> Duet {
    let g = zoo_model(name).unwrap();
    Duet::builder().build(&g).unwrap()
}

/// The canonical drift scenario (same degradation duet-serve's smoke
/// test injects): the GPU loses most of its compute, bandwidth, and
/// launch throughput.
fn degraded_gpu(base: &SystemModel) -> SystemModel {
    let mut s = base.clone();
    s.gpu.peak_gflops /= 12.0;
    s.gpu.mem_bw_gbps /= 8.0;
    s.gpu.kernel_launch_us *= 8.0;
    s
}

#[test]
fn offline_tuning_is_never_worse_and_matches_the_enumerated_optimum() {
    for name in ZOO {
        let engine = engine_for(name);
        let out = tune(&engine, &TuneConfig::default());
        assert!(
            out.tuned_us <= out.algorithm1_us,
            "{name}: tuned {} µs worse than Algorithm 1 {} µs",
            out.tuned_us,
            out.algorithm1_us
        );
        assert!(out.promoted, "{name}: winning plan failed a gate:\n{out}");
        // Whatever the tuner claims must be what the simulator claims.
        assert_eq!(
            out.plan.expected_latency_us.to_bits(),
            out.tuned_us.to_bits(),
            "{name}: plan latency disagrees with the tuned engine"
        );
        // Certification against exhaustive enumeration, where feasible
        // (2^n simulations; squeezenet's 25 subgraphs are out of reach).
        if engine.units().len() <= 16 {
            let ideal = Duet::builder()
                .policy(SchedulePolicy::Ideal)
                .build(engine.graph())
                .unwrap();
            assert_eq!(
                out.tuned_us,
                ideal.latency_us(),
                "{name}: tuned plan misses the enumerated optimum"
            );
        }
    }
}

#[test]
fn drift_tuning_strictly_beats_the_stale_plan_on_most_of_the_zoo() {
    let mut strict_wins = Vec::new();
    for name in ZOO {
        let engine = engine_for(name);
        let deployed = degraded_gpu(engine.system());
        let out = tune_drifted(&engine, deployed, &TuneConfig::default());
        let stale = out.stale_us.expect("drift runs record the stale latency");
        assert!(
            out.tuned_us <= stale,
            "{name}: tuned {} µs worse than the stale plan {} µs",
            out.tuned_us,
            stale
        );
        assert!(
            out.tuned_us <= out.algorithm1_us,
            "{name}: tuned worse than the replanned Algorithm 1"
        );
        assert!(
            out.promoted,
            "{name}: drift-tuned plan failed a gate:\n{out}"
        );
        if out.tuned_us < stale {
            strict_wins.push((name, stale / out.tuned_us));
        }
    }
    assert!(
        strict_wins.len() >= 2,
        "expected strict wins over the stale plan on at least two zoo \
         models, got {strict_wins:?}"
    );
}

#[test]
fn tuner_repairs_a_deliberately_bad_seed() {
    // Algorithm 1 needs no repair on the zoo — so give the tuner a
    // random placement (the paper's ablation baseline) and require a
    // strict win, proving the search machinery does move when there is
    // headroom.
    let g = zoo_model("mtdnn").unwrap();
    let engine = Duet::builder()
        .policy(SchedulePolicy::Random { seed: 3 })
        .no_fallback()
        .build(&g)
        .unwrap();
    let optimal = engine_for("mtdnn");
    assert!(
        engine.latency_us() > optimal.latency_us(),
        "random seed should start suboptimal"
    );
    let out = tune(&engine, &TuneConfig::default());
    assert!(
        out.strictly_better(),
        "tuner failed to improve a random seed:\n{out}"
    );
    assert_eq!(
        out.tuned_us,
        optimal.latency_us(),
        "tuner should recover the optimum from a random seed"
    );
}

#[test]
fn same_seed_bit_identical_winning_plan() {
    for name in ["wide_and_deep", "mtdnn"] {
        let engine = engine_for(name);
        let cfg = TuneConfig {
            seed: 0xFEED,
            budget: 800,
            ..TuneConfig::default()
        };
        let a = tune(&engine, &cfg);
        let b = tune(&engine, &cfg);
        assert_eq!(
            a.plan.to_json(),
            b.plan.to_json(),
            "{name}: same seed must yield a bit-identical winning plan"
        );
        assert_eq!(a.tuned_us.to_bits(), b.tuned_us.to_bits());
        assert_eq!(a.winner, b.winner);
    }
}

#[test]
fn tuned_outputs_bit_identical_to_algorithm1() {
    // The tuner only moves subgraphs between devices; the computation
    // itself must be untouched — same feeds, bitwise-equal outputs.
    for name in ["mtdnn", "siamese"] {
        let engine = engine_for(name);
        let out = tune(&engine, &TuneConfig::default());
        let feeds = input_feeds(engine.graph(), 11);
        let base = engine.run(&feeds).unwrap();
        let tuned = out.tuned.run(&feeds).unwrap();
        assert_eq!(
            base.outputs.len(),
            tuned.outputs.len(),
            "{name}: output arity changed"
        );
        for (id, v) in &base.outputs {
            assert_eq!(
                &tuned.outputs[id], v,
                "{name}: tuned plan drifted numerically on node {id}"
            );
        }
    }
}

fn shared_engine() -> &'static Duet {
    static ENGINE: OnceLock<Duet> = OnceLock::new();
    ENGINE.get_or_init(|| engine_for("mtdnn"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every plan any strategy emits — not just the final winner — must
    /// clear the D2xx lints and the D5xx model check after promotion
    /// through `with_devices` (which re-applies the fallback guardrail).
    #[test]
    fn every_search_emitted_plan_is_provable(seed in any::<u64>(), budget in 50usize..250) {
        let engine = shared_engine();
        let subgraphs: Vec<_> = engine.units().iter().map(|u| u.sg.clone()).collect();
        let oracle = Oracle::analytic(engine.graph(), &subgraphs, engine.system());
        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(CriticalPathFirst),
            Box::new(BeamSearch::default()),
            Box::new(SimulatedAnnealing { iters: 120, restarts: 2, t0_frac: 0.05 }),
        ];
        let seed_devices: Vec<DeviceKind> = engine.devices().to_vec();
        for s in strategies {
            let r = s.search(&SearchContext {
                oracle: &oracle,
                seed_devices: &seed_devices,
                seed,
                budget,
            });
            let candidate = engine.with_devices(r.devices);
            let plan = candidate.export_plan();
            let lint = lint_plan(engine.graph(), &plan.to_facts(), &LintConfig::default());
            prop_assert!(!lint.has_errors(), "{} emitted a D2xx-dirty plan:\n{lint}", s.name());
            let check = candidate.check_plan(&ModelCheckConfig::default());
            prop_assert!(
                !check.report.has_errors(),
                "{} emitted a D5xx-dirty plan:\n{}",
                s.name(),
                check.report
            );
        }
    }
}
