//! Deploying to a different coupled architecture: schedule Wide-and-Deep
//! for an integrated edge SoC (shared memory, zero-copy "transfers"),
//! compare the decision against the datacenter server, and ship the
//! result as a model artifact + schedule plan.
//!
//! ```text
//! cargo run --release --example edge_deployment
//! ```

use duet::core::SchedulePlan;
use duet::device::SystemModel;
use duet::ir::{decode, encode};
use duet::prelude::*;

fn main() {
    let model = wide_and_deep(&WideAndDeepConfig::default());

    // --- Schedule the same model for two very different systems.
    let server = Duet::builder()
        .system(SystemModel::paper_server())
        .build(&model)
        .expect("server engine");
    let edge = Duet::builder()
        .system(SystemModel::edge_soc())
        .build(&model)
        .expect("edge engine");

    println!("datacenter server (Xeon + Titan V over PCIe 3.0):");
    println!("{}", server.placement_report());
    println!("edge SoC (6-core CPU + integrated GPU, zero-copy memory):");
    println!("{}", edge.placement_report());

    // --- The deployment artifact: model bytes + schedule plan.
    let artifact = encode(&model);
    let plan = edge.export_plan();
    println!(
        "deployment bundle: model {:.1} MB + plan {} bytes (expected {:.3} ms on-device)",
        artifact.len() as f64 / 1e6,
        plan.to_json().len(),
        plan.expected_latency_us / 1e3
    );

    // --- On the "device": decode the model, apply the shipped plan
    // (no profiling, no scheduling), run.
    let on_device_model = decode(artifact).expect("artifact decodes");
    let shipped_plan = SchedulePlan::from_json(&plan.to_json()).expect("plan parses");
    let engine = Duet::builder()
        .system(SystemModel::edge_soc())
        .build_with_plan(&on_device_model, &shipped_plan)
        .expect("plan applies");
    assert_eq!(engine.latency_us(), edge.latency_us());
    println!(
        "on-device engine from shipped plan: {:.3} ms (same as offline decision ✔)",
        engine.latency_us() / 1e3
    );
}
