//! Building a model through the Relay-style expression IR (§V) and
//! saving/loading it as a binary artifact.
//!
//! The paper's implementation translates TVM's expression-oriented Relay
//! into an adjacency-list graph via the visitor pattern before
//! partitioning. This example does the same translation on a small
//! two-branch recommender, then round-trips the model through the binary
//! format and serves it from the decoded copy.
//!
//! ```text
//! cargo run --release --example expression_ir
//! ```

use duet::ir::expr::{to_graph, Expr};
use duet::ir::{analyze, decode, encode, Op};
use duet::prelude::*;

fn main() {
    // --- Describe the model as pure expressions (shared subterms stay
    // shared; the translation emits each exactly once).
    let user = Expr::var("user.features", vec![1, 64]);
    let w1 = Expr::constant("tower.w1", Tensor::randn(vec![128, 64], 0.12, 1));
    let b1 = Expr::constant("tower.b1", Tensor::zeros(vec![128]));
    let hidden = Expr::call(
        "tower.act",
        Op::Relu,
        vec![Expr::call(
            "tower.fc",
            Op::Linear,
            vec![user.clone(), w1, b1],
        )],
    );

    // Two heads consume the same tower output — a shared node (§IV-A).
    let head = |name: &str, seed: u64| {
        let w = Expr::constant(format!("{name}.w"), Tensor::randn(vec![1, 128], 0.1, seed));
        let b = Expr::constant(format!("{name}.b"), Tensor::zeros(vec![1]));
        Expr::call(
            format!("{name}.sigmoid"),
            Op::Sigmoid,
            vec![Expr::call(
                format!("{name}.fc"),
                Op::Linear,
                vec![hidden.clone(), w, b],
            )],
        )
    };
    let click = head("click", 7);
    let purchase = head("purchase", 8);

    // --- Translate to the adjacency-list graph.
    let graph = to_graph("two_head_recsys", &[click, purchase]).expect("valid expressions");
    println!(
        "translated: {} nodes, {} outputs",
        graph.len(),
        graph.outputs().len()
    );
    print!("{}", analyze(&graph));

    // --- Round-trip through the binary model format.
    let bytes = encode(&graph);
    println!("\nserialized model: {} KB", bytes.len() / 1024);
    let reloaded = decode(bytes).expect("model decodes");

    // --- Schedule and execute the *decoded* model.
    let engine = Duet::builder().build(&reloaded).expect("engine builds");
    println!("\n{}", engine.placement_report());
    let feeds = duet_models::input_feeds(engine.graph(), 42);
    let out = engine.run(&feeds).expect("inference runs");
    for &o in engine.graph().outputs() {
        println!(
            "  {:<18} = {:.6}",
            engine.graph().node(o).label,
            out.outputs[&o].data()[0]
        );
    }

    // --- And prove the decoded model equals the original numerically.
    let reference = graph.eval(&feeds).expect("original eval");
    for (i, &o) in engine.graph().outputs().iter().enumerate() {
        assert_eq!(out.outputs[&o], reference[i]);
    }
    println!("\ndecoded model matches the original bit-for-bit ✔");
}
