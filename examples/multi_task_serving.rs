//! MT-DNN multi-task serving: a shared transformer encoder fans out into
//! several recurrent answer modules. DUET keeps the GEMM-heavy encoder on
//! the GPU and spreads the GRU-based task heads across both devices.
//!
//! Also demonstrates policy comparison on a real workload and scaling the
//! number of task heads.
//!
//! ```text
//! cargo run --release --example multi_task_serving
//! ```

use duet::prelude::*;
use duet_core::SchedulePolicy;

fn main() {
    let cfg = MtDnnConfig::default();
    println!(
        "MT-DNN: {} encoder layers (d_model {}), {} task heads (GRU hidden {})\n",
        cfg.encoder_layers, cfg.d_model, cfg.num_tasks, cfg.task_hidden
    );
    let model = mtdnn(&cfg);
    let engine = Duet::builder().build(&model).expect("engine builds");
    println!("{}", engine.placement_report());

    // How do the scheduling policies compare on this model?
    println!("policy comparison:");
    for (name, policy) in [
        ("round-robin", SchedulePolicy::RoundRobin),
        ("random(0)", SchedulePolicy::Random { seed: 0 }),
        ("greedy only", SchedulePolicy::GreedyOnly),
        ("greedy+correction", SchedulePolicy::GreedyCorrection),
    ] {
        let e = Duet::builder()
            .policy(policy)
            .no_fallback()
            .build(&model)
            .expect("engine builds");
        println!("  {name:<18} {:>9.3} ms", e.latency_us() / 1e3);
    }

    // Scaling the number of independent task heads: more heads, more
    // concurrency for DUET to exploit.
    println!("\nscaling task heads:");
    for tasks in [1usize, 2, 4, 8] {
        let m = mtdnn(&MtDnnConfig {
            num_tasks: tasks,
            ..MtDnnConfig::default()
        });
        let e = Duet::builder().build(&m).expect("engine builds");
        let gpu = e.single_device_latency_us(duet_device::DeviceKind::Gpu);
        println!(
            "  {tasks} heads: DUET {:>8.3} ms, TVM-GPU {:>8.3} ms ({:.2}x)",
            e.latency_us() / 1e3,
            gpu / 1e3,
            gpu / e.latency_us()
        );
    }
}
