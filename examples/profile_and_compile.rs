//! A tour of DUET's offline machinery on the Siamese network: compiler
//! passes, partitioning, fusion statistics and the compiler-aware
//! profiler — the pieces Fig. 6 wires together.
//!
//! ```text
//! cargo run --release --example profile_and_compile
//! ```

use duet::prelude::*;
use duet_compiler::CompileOptions;
use duet_core::partition;
use duet_device::DeviceKind;

fn main() {
    let model = siamese(&SiameseConfig::default());
    println!(
        "model: {} ({} operators)\n",
        model.name,
        model.compute_ids().len()
    );

    // --- Graph-level optimization.
    let compiler = Compiler::default();
    let (graph, stats) = compiler.optimize(&model).expect("optimize");
    println!(
        "compiler passes: {} nodes -> {} (folded {}, merged {}, dead {})\n",
        stats.nodes_before,
        stats.nodes_after,
        stats.constants_folded,
        stats.subexpressions_merged,
        stats.dead_removed
    );

    // --- Partitioning.
    let part = partition(&graph);
    println!(
        "partition: {} phases, {} subgraphs",
        part.phases.len(),
        part.subgraph_count()
    );
    for (i, phase) in part.phases.iter().enumerate() {
        println!(
            "  phase {i}: {:?}, {} subgraph(s), sizes {:?}",
            phase.kind,
            phase.subgraphs.len(),
            phase.subgraphs.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    // --- Fusion inside each coarse subgraph.
    let subgraphs = part.compile(&graph, &compiler);
    let unfused = Compiler::new(CompileOptions::none());
    println!("\nfusion (coarse subgraphs keep the compiler's graph-level wins):");
    for sg in &subgraphs {
        let raw = unfused.compile_nodes(&graph, &sg.node_ids, sg.name.clone());
        println!(
            "  {:<12} {:>3} ops -> {:>3} fused kernels (launches {:.0} -> {:.0})",
            sg.name,
            sg.node_ids.len(),
            sg.kernel_count(),
            raw.cost.kernel_launches,
            sg.cost.kernel_launches
        );
    }

    // --- Compiler-aware profiling (the paper's 500-run micro-benchmarks).
    let profiler = Profiler::new(duet_device::SystemModel::paper_server());
    println!("\nprofiles (mean over 450 measured runs):");
    println!(
        "  {:<12} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "subgraph", "cpu (ms)", "gpu (ms)", "best", "in (KB)", "out (KB)"
    );
    for sg in &subgraphs {
        let p = profiler.profile(&graph, sg);
        println!(
            "  {:<12} {:>12.3} {:>12.3} {:>8} {:>12.1} {:>12.1}",
            p.name,
            p.cpu_time_us / 1e3,
            p.gpu_time_us / 1e3,
            p.best_device().to_string(),
            p.input_bytes / 1e3,
            p.output_bytes / 1e3
        );
    }

    // --- And the final engine decision.
    let engine = Duet::builder().build(&model).expect("engine builds");
    println!();
    println!("{}", engine.placement_report());
    let _ = DeviceKind::Cpu;
}
