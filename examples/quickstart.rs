//! Quickstart: build a small model, let DUET schedule it across the
//! CPU-GPU pair, and run one inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use duet::prelude::*;
use duet_ir::Op;

fn main() {
    // 1. Describe a model with the graph builder: two independent
    //    branches (an LSTM and an MLP) joined by a small head — the kind
    //    of structure where heterogeneous execution pays.
    let mut b = GraphBuilder::new("quickstart", 42);
    let text = b.input("text", vec![12, 1, 32]);
    let rnn = b.lstm_stack("rnn", text, 64, 2).expect("lstm");
    // Take the last timestep as a [1, 64] feature vector.
    let flat = b
        .op(
            "rnn.flat",
            Op::Reshape {
                shape: vec![12, 64],
            },
            &[rnn],
        )
        .unwrap();
    let last = b
        .op("rnn.last", Op::SliceRows { start: 11, end: 12 }, &[flat])
        .unwrap();

    let dense_in = b.input("features", vec![1, 128]);
    let h1 = b.dense("mlp.fc1", dense_in, 256, Some(Op::Relu)).unwrap();
    let h2 = b.dense("mlp.fc2", h1, 64, Some(Op::Relu)).unwrap();

    let cat = b
        .op("head.concat", Op::Concat { axis: 1 }, &[last, h2])
        .unwrap();
    let score = b.dense("head.out", cat, 1, None).unwrap();
    let out = b.op("head.sigmoid", Op::Sigmoid, &[score]).unwrap();
    let model = b.finish(&[out]).expect("valid graph");

    // 2. Build the engine: optimize -> partition -> compile -> profile ->
    //    schedule (greedy-correction) -> fallback check.
    let engine = Duet::builder().build(&model).expect("engine builds");

    // 3. Inspect the decision.
    println!("{}", engine.placement_report());

    // 4. Run a real inference on the threaded heterogeneous executor.
    let feeds = duet_models::input_feeds(engine.graph(), 7);
    let outcome = engine.run(&feeds).expect("inference runs");
    let out_id = engine.graph().outputs()[0];
    println!(
        "inference output = {:.6} (virtual latency {:.1} us, host wall {:?})",
        outcome.outputs[&out_id].data()[0],
        outcome.virtual_latency_us,
        outcome.wall_time,
    );

    // 5. Sanity: the heterogeneous result equals single-device evaluation.
    let reference = engine.graph().eval(&feeds).expect("reference eval");
    assert!(outcome.outputs[&out_id].approx_eq(&reference[0], 1e-5));
    println!("matches single-device reference ✔");
}
