//! The paper's flagship workload end-to-end: Wide-and-Deep at evaluation
//! scale (Table I defaults), scheduled by DUET, with the Fig. 4-style
//! timeline and Fig. 11-style framework comparison printed.
//!
//! ```text
//! cargo run --release --example wide_and_deep
//! ```

use duet::prelude::*;
use duet_device::DeviceKind;
use duet_frameworks::Framework;
use duet_runtime::{simulate, SimNoise};

fn main() {
    let cfg = WideAndDeepConfig::default();
    println!(
        "Wide-and-Deep: wide {}, ffn {}x{}, lstm {}x{} (seq {}), ResNet-{} @ {}px, batch {}\n",
        cfg.wide_features,
        cfg.ffn_hidden,
        cfg.ffn_layers,
        cfg.rnn_hidden,
        cfg.rnn_layers,
        cfg.seq_len,
        cfg.cnn_depth,
        cfg.image,
        cfg.batch
    );
    let model = wide_and_deep(&cfg);
    let engine = Duet::builder().build(&model).expect("engine builds");

    // Placement report (Table II row).
    println!("{}", engine.placement_report());

    // Execution timeline of the chosen schedule.
    println!("schedule timeline:");
    let r = simulate(
        engine.graph(),
        engine.placed(),
        engine.system(),
        &mut SimNoise::disabled(),
    );
    for e in &r.timeline {
        println!(
            "  {:<12} {}  {:>9.3} -> {:>9.3} ms",
            e.name,
            e.device,
            e.start_us / 1e3,
            e.end_us / 1e3
        );
    }
    println!(
        "  transferred over PCIe: {:.1} KB\n",
        r.transferred_bytes / 1e3
    );

    // Framework comparison (Fig. 11 row for this model).
    let sys = engine.system();
    let pt = Framework::pytorch();
    println!("latency comparison (ms):");
    for (name, us) in [
        ("PyTorch-CPU", pt.latency_us(&model, DeviceKind::Cpu, sys)),
        ("PyTorch-GPU", pt.latency_us(&model, DeviceKind::Gpu, sys)),
        ("TVM-CPU", engine.single_device_latency_us(DeviceKind::Cpu)),
        ("TVM-GPU", engine.single_device_latency_us(DeviceKind::Gpu)),
        ("DUET", engine.latency_us()),
    ] {
        println!("  {name:<12} {:>9.3}", us / 1e3);
    }

    // Tail latency (Fig. 12 row).
    let stats = engine.measure(5000, 0xd0e7);
    println!(
        "\nDUET tail latency over 5000 runs: P50 {:.3} ms, P99 {:.3} ms, P99.9 {:.3} ms",
        stats.p50() / 1e3,
        stats.p99() / 1e3,
        stats.p999() / 1e3
    );
}
