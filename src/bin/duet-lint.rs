//! `duet-lint` — static analysis front end.
//!
//! Runs the three `duet-analysis` analyzers over a model (or all of
//! them) and exits non-zero when any reports an error:
//!
//! ```text
//! duet-lint wide_and_deep            # verify + pass-check + schedule lint
//! duet-lint all                      # every zoo model
//! duet-lint mtdnn --plan plan.json   # lint a serialized plan instead
//! duet-lint siamese --json           # machine-readable report
//! duet-lint resnet50 --fast          # skip the engine build / plan lint
//! duet-lint trace siamese            # run + record + conformance-check
//! duet-lint trace mtdnn --out t.json # dump annotated Chrome trace
//! ```
//!
//! Per model: the raw graph is verified (`D0xx`), the optimization
//! pipeline runs with pass-invariant checking forced on (`D1xx`), the
//! optimized graph is re-verified, the scheduling decision — a
//! `--plan` file, or the engine's own freshly exported plan — is linted
//! (`D2xx`), and every placed subgraph's memory-planned instruction
//! tape is verified (`D4xx`: coverage, dependency order, live-range
//! slot overlap, in-place aliasing, shapes, peak accounting).
//!
//! The `trace` subcommand is the dynamic counterpart: it builds the
//! engine, executes one inference on the threaded executor *and* one in
//! the noise-free simulator, records an execution witness from each,
//! runs the `D3xx` conformance checker on both, and cross-checks the
//! two witnesses against each other (`check_agreement`). `--out <file>`
//! additionally dumps the executor witness as an annotated Chrome trace
//! (load in `chrome://tracing` / Perfetto).

use duet_analysis::{
    check_agreement, check_memory_plans, check_optimize, check_witness, lint_plan, verify_graph,
    LintConfig, Report, WitnessCheckConfig,
};
use duet_compiler::CompileOptions;
use duet_core::{Duet, SchedulePlan};
use duet_models::{input_feeds, zoo_model};
use duet_runtime::{simulate_witnessed, witness_to_chrome_trace, SimNoise};

const MODELS: &[&str] = &[
    "wide_and_deep",
    "siamese",
    "mtdnn",
    "resnet18",
    "resnet50",
    "vgg16",
    "squeezenet",
    "mobilenet",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  duet-lint <model>|all [--plan <file>] [--fast] [--json] [--deny-warnings]\n  \
         duet-lint trace <model>|all [--seed <n>] [--out <file>] [--json] [--deny-warnings]\n\n\
         models: {}\n\noptions:\n  --plan <file>    lint a serialized schedule plan against the model\n  \
         --fast           skip the engine build (no schedule lint)\n  \
         --seed <n>       input-feed seed for trace runs (default 7)\n  \
         --out <file>     trace: dump the executor witness as a Chrome trace\n  \
         --json           machine-readable output\n  \
         --deny-warnings  exit non-zero on warnings too",
        MODELS.join(", ")
    );
    std::process::exit(2);
}

struct Options {
    plan_path: Option<String>,
    fast: bool,
    json: bool,
    deny_warnings: bool,
    seed: u64,
    out: Option<String>,
}

fn lint_model(name: &str, opts: &Options) -> Vec<Report> {
    let graph = zoo_model(name).unwrap_or_else(|| {
        eprintln!("unknown model {name}");
        usage()
    });
    let mut reports = vec![verify_graph(&graph)];

    let (optimized, pass_report) = check_optimize(&graph, CompileOptions::checked());
    reports.push(pass_report);
    let Some((optimized, _stats)) = optimized else {
        return reports; // pipeline broke; nothing downstream to lint
    };
    let mut post = verify_graph(&optimized);
    post.subject = format!("{}:optimized", graph.name);
    reports.push(post);

    if let Some(path) = &opts.plan_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        let plan = SchedulePlan::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        reports.push(lint_plan(
            &optimized,
            &plan.to_facts(),
            &LintConfig::default(),
        ));
    } else if !opts.fast {
        // No plan supplied: build the engine and lint its own decision.
        match Duet::builder().build(&graph) {
            Ok(engine) => {
                let plan = engine.export_plan();
                reports.push(lint_plan(
                    engine.graph(),
                    &plan.to_facts(),
                    &LintConfig::default(),
                ));
                // D4xx: verify every placed subgraph's memory plan.
                reports.push(check_memory_plans(
                    engine.graph(),
                    engine.placed().iter().map(|p| &p.sg),
                ));
            }
            Err(e) => {
                let mut r = Report::new(format!("{name}:plan"));
                r.push(duet_analysis::Diagnostic::error(
                    duet_analysis::codes::PASS_FAILED,
                    format!("engine build failed: {e}"),
                ));
                reports.push(r);
            }
        }
    }
    reports
}

/// The `trace` subcommand body: run `name` once on the threaded
/// executor and once in the noise-free simulator, conformance-check
/// both witnesses (`D30x`) and cross-check them (`D31x`).
fn trace_model(name: &str, opts: &Options) -> Vec<Report> {
    let graph = zoo_model(name).unwrap_or_else(|| {
        eprintln!("unknown model {name}");
        usage()
    });
    let engine = match Duet::builder().build(&graph) {
        Ok(e) => e,
        Err(e) => {
            let mut r = Report::new(format!("{name}:trace"));
            r.push(duet_analysis::Diagnostic::error(
                duet_analysis::codes::PASS_FAILED,
                format!("engine build failed: {e}"),
            ));
            return vec![r];
        }
    };
    let cfg = WitnessCheckConfig::default();
    let feeds = input_feeds(engine.graph(), opts.seed);
    let (_, exec_witness) = match engine.run_witnessed(&feeds) {
        Ok(pair) => pair,
        Err(e) => {
            let mut r = Report::new(format!("{name}:trace"));
            r.push(duet_analysis::Diagnostic::error(
                duet_analysis::codes::WITNESS_MISSING_EXECUTION,
                format!("threaded execution failed: {e}"),
            ));
            return vec![r];
        }
    };
    // Conformance checking assumes noise-free virtual clocks.
    let (_, sim_witness) = simulate_witnessed(
        engine.graph(),
        engine.placed(),
        engine.system(),
        &mut SimNoise::disabled(),
    );
    let reports = vec![
        check_witness(
            engine.graph(),
            engine.placed(),
            engine.system(),
            &exec_witness,
            &cfg,
        ),
        check_witness(
            engine.graph(),
            engine.placed(),
            engine.system(),
            &sim_witness,
            &cfg,
        ),
        check_agreement(&exec_witness, &sim_witness, &cfg),
    ];
    if let Some(path) = &opts.out {
        let trace = witness_to_chrome_trace(name, &exec_witness);
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
    reports
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut trace = false;
    let mut opts = Options {
        plan_path: None,
        fast: false,
        json: false,
        deny_warnings: false,
        seed: 7,
        out: None,
    };
    let mut it = args.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("trace") {
        trace = true;
        it.next();
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => match it.next() {
                Some(p) => opts.plan_path = Some(p),
                None => usage(),
            },
            "--fast" => opts.fast = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            model => names.push(model.to_string()),
        }
    }
    if names.is_empty() || (!trace && (opts.out.is_some() || opts.seed != 7)) {
        usage();
    }
    if names.iter().any(|n| n == "all") {
        if opts.plan_path.is_some() {
            eprintln!("--plan needs a single model");
            usage();
        }
        if opts.out.is_some() {
            eprintln!("--out needs a single model");
            usage();
        }
        names = MODELS.iter().map(|s| s.to_string()).collect();
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_reports = Vec::new();
    for name in &names {
        let reports = if trace {
            trace_model(name, &opts)
        } else {
            lint_model(name, &opts)
        };
        for report in reports {
            errors += report.error_count();
            warnings += report.warning_count();
            if opts.json {
                json_reports.push(report.to_json());
            } else if report.is_clean() {
                println!("{}: clean", report.subject);
            } else {
                print!("{report}");
            }
        }
    }
    if opts.json {
        let rendered = serde_json::to_string_pretty(&serde_json::Value::Array(json_reports))
            .expect("report serializes");
        println!("{rendered}");
    } else {
        println!(
            "{} model(s): {errors} error(s), {warnings} warning(s)",
            names.len()
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
