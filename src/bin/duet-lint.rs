//! `duet-lint` — static analysis front end.
//!
//! Runs the `duet-analysis` analyzers over a model (or all of them) and
//! exits non-zero when any reports an error:
//!
//! ```text
//! duet-lint wide_and_deep             # verify + pass-check + schedule lint
//! duet-lint all                       # every zoo model
//! duet-lint mtdnn --plan plan.json    # lint a serialized plan instead
//! duet-lint siamese --json            # machine-readable report
//! duet-lint resnet50 --fast           # skip the engine build / plan lint
//! duet-lint trace siamese             # run + record + conformance-check
//! duet-lint trace mtdnn --out t.json  # dump annotated Chrome trace
//! duet-lint trace --dump <dir>        # conformance-check a flight dump
//! duet-lint model-check all           # prove D5xx for every zoo plan
//! duet-lint model-check mtdnn --out cex.json  # counterexample trace
//! duet-lint dataflow all              # D6xx abstract interpretation
//! duet-lint dataflow resnet50 --json  # machine-readable hazards
//! ```
//!
//! Per model: the raw graph is verified (`D0xx`), the optimization
//! pipeline runs with pass-invariant checking forced on (`D1xx`), the
//! optimized graph is re-verified, the scheduling decision — a
//! `--plan` file, or the engine's own freshly exported plan — is linted
//! (`D2xx`), and every placed subgraph's memory-planned instruction
//! tape is verified (`D4xx`: coverage, dependency order, live-range
//! slot overlap, in-place aliasing, shapes, peak accounting).
//!
//! The `trace` subcommand is the dynamic counterpart: it builds the
//! engine, executes one inference on the threaded executor *and* one in
//! the noise-free simulator, records an execution witness from each,
//! runs the `D3xx` conformance checker on both, and cross-checks the
//! two witnesses against each other (`check_agreement`). `--out <file>`
//! additionally dumps the executor witness as an annotated Chrome trace
//! (load in `chrome://tracing` / Perfetto). With `--dump <dir>` it
//! instead replays a `duet-serve` flight-recorder dump post mortem: the
//! engine is rebuilt from the dumped plan and system model, the dumped
//! witness goes through `check_witness`, and a fresh noise-free
//! simulation cross-checks it (`check_agreement`) — proving the
//! anomalous serving run still obeyed every runtime invariant.
//!
//! The `model-check` subcommand proves the `D5xx` interleaving
//! properties of a plan *before* it runs: deadlock-freedom,
//! schedule-determinism, transfer/aliasing race freedom, device
//! occupancy and bounded trigger staleness, by exhaustive exploration
//! of the plan's reachable states. With the engine's own plan the model
//! is priced from the compiled subgraphs (enabling the `D503` occupancy
//! bound); with `--plan <file>` the supplied plan is checked unpriced.
//! `--out <file>` dumps the first violation's counterexample as a
//! Chrome trace; `--max-states <n>` bounds the exploration.
//!
//! The `dataflow` subcommand runs the `D6xx` abstract interpreter over
//! the raw model graph: value intervals, NaN/Inf reachability and
//! alias/escape facts in one forward pass, reporting proven hazards
//! (certain division by zero, reachable NaN with its producing path,
//! certain overflow to infinity, dead-by-constant results, unsound
//! attributes). Per model it prints node count, finding counts and the
//! analyzer's wall time; the summary line carries the worst per-model
//! time so CI can hold the analyzer to its latency budget.
//!
//! ## Exit codes (stable, same for every subcommand)
//!
//! * `0` — all reports clean (warnings allowed unless `--deny-warnings`)
//! * `1` — at least one error diagnostic, or any warning under
//!   `--deny-warnings`
//! * `2` — usage or I/O failure (bad flags, unknown model, unreadable
//!   or unwritable file)

use duet_analysis::{
    check_agreement, check_memory_plans, check_optimize, check_witness, lint_plan, verify_graph,
    LintConfig, ModelCheckConfig, Report, WitnessCheckConfig,
};
use duet_compiler::CompileOptions;
use duet_core::{Duet, SchedulePlan};
use duet_models::{input_feeds, zoo_model};
use duet_runtime::{simulate_witnessed, witness_to_chrome_trace, SimNoise};

const MODELS: &[&str] = &[
    "wide_and_deep",
    "siamese",
    "mtdnn",
    "resnet18",
    "resnet50",
    "vgg16",
    "squeezenet",
    "mobilenet",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  duet-lint <model>|all [--plan <file>] [--fast] [--json] [--deny-warnings]\n  \
         duet-lint trace <model>|all [--seed <n>] [--out <file>] [--json] [--deny-warnings]\n  \
         duet-lint trace --dump <dir> [--out <file>] [--json] [--deny-warnings]\n  \
         duet-lint model-check <model>|all [--plan <file>] [--max-states <n>] [--out <file>]\n                                    \
         [--json] [--deny-warnings]\n  \
         duet-lint dataflow <model>|all [--json] [--deny-warnings]\n\n\
         models: {}\n\noptions:\n  --plan <file>    lint/check a serialized schedule plan against the model\n  \
         --fast           skip the engine build (no schedule lint)\n  \
         --seed <n>       input-feed seed for trace runs (default 7)\n  \
         --out <file>     trace: dump the executor witness as a Chrome trace\n                   \
         model-check: dump the counterexample as a Chrome trace\n  \
         --dump <dir>     trace: replay a duet-serve flight dump instead of a live run\n  \
         --max-states <n> model-check: exploration budget (default 262144)\n  \
         --json           machine-readable output\n  \
         --deny-warnings  exit non-zero on warnings too\n\nexit codes:\n  \
         0  clean (warnings allowed unless --deny-warnings)\n  \
         1  errors found, or warnings under --deny-warnings\n  \
         2  usage or I/O failure",
        MODELS.join(", ")
    );
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Lint,
    Trace,
    ModelCheck,
    Dataflow,
}

struct Options {
    plan_path: Option<String>,
    fast: bool,
    json: bool,
    deny_warnings: bool,
    seed: u64,
    out: Option<String>,
    dump: Option<String>,
    max_states: usize,
}

/// Read + parse a plan file, exiting 2 on failure (I/O, not a finding).
fn load_plan(path: &str) -> SchedulePlan {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    SchedulePlan::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn known_model(name: &str) -> duet_ir::Graph {
    zoo_model(name).unwrap_or_else(|| {
        eprintln!("unknown model {name}");
        usage()
    })
}

fn lint_model(name: &str, opts: &Options) -> Vec<Report> {
    let graph = known_model(name);
    let mut reports = vec![verify_graph(&graph)];

    let (optimized, pass_report) = check_optimize(&graph, CompileOptions::checked());
    reports.push(pass_report);
    let Some((optimized, _stats)) = optimized else {
        return reports; // pipeline broke; nothing downstream to lint
    };
    let mut post = verify_graph(&optimized);
    post.subject = format!("{}:optimized", graph.name);
    reports.push(post);

    if let Some(path) = &opts.plan_path {
        let plan = load_plan(path);
        reports.push(lint_plan(
            &optimized,
            &plan.to_facts(),
            &LintConfig::default(),
        ));
    } else if !opts.fast {
        // No plan supplied: build the engine and lint its own decision.
        match Duet::builder().build(&graph) {
            Ok(engine) => {
                let plan = engine.export_plan();
                reports.push(lint_plan(
                    engine.graph(),
                    &plan.to_facts(),
                    &LintConfig::default(),
                ));
                // D4xx: verify every placed subgraph's memory plan.
                reports.push(check_memory_plans(
                    engine.graph(),
                    engine.placed().iter().map(|p| &p.sg),
                ));
            }
            Err(e) => {
                let mut r = Report::new(format!("{name}:plan"));
                r.push(duet_analysis::Diagnostic::error(
                    duet_analysis::codes::PASS_FAILED,
                    format!("engine build failed: {e}"),
                ));
                reports.push(r);
            }
        }
    }
    reports
}

/// The `trace` subcommand body: run `name` once on the threaded
/// executor and once in the noise-free simulator, conformance-check
/// both witnesses (`D30x`) and cross-check them (`D31x`).
fn trace_model(name: &str, opts: &Options) -> Vec<Report> {
    let graph = known_model(name);
    let engine = match Duet::builder().build(&graph) {
        Ok(e) => e,
        Err(e) => {
            let mut r = Report::new(format!("{name}:trace"));
            r.push(duet_analysis::Diagnostic::error(
                duet_analysis::codes::PASS_FAILED,
                format!("engine build failed: {e}"),
            ));
            return vec![r];
        }
    };
    let cfg = WitnessCheckConfig::default();
    let feeds = input_feeds(engine.graph(), opts.seed);
    let (_, exec_witness) = match engine.run_witnessed(&feeds) {
        Ok(pair) => pair,
        Err(e) => {
            let mut r = Report::new(format!("{name}:trace"));
            r.push(duet_analysis::Diagnostic::error(
                duet_analysis::codes::WITNESS_MISSING_EXECUTION,
                format!("threaded execution failed: {e}"),
            ));
            return vec![r];
        }
    };
    // Conformance checking assumes noise-free virtual clocks.
    let (_, sim_witness) = simulate_witnessed(
        engine.graph(),
        engine.placed(),
        engine.system(),
        &mut SimNoise::disabled(),
    );
    let reports = vec![
        check_witness(
            engine.graph(),
            engine.placed(),
            engine.system(),
            &exec_witness,
            &cfg,
        ),
        check_witness(
            engine.graph(),
            engine.placed(),
            engine.system(),
            &sim_witness,
            &cfg,
        ),
        check_agreement(&exec_witness, &sim_witness, &cfg),
    ];
    if let Some(path) = &opts.out {
        write_file(path, &witness_to_chrome_trace(name, &exec_witness));
    }
    reports
}

/// The `trace --dump` body: post-mortem conformance for a serving
/// anomaly. Loads a `duet-serve` flight dump, rebuilds the engine from
/// the dumped plan + system model, runs the dumped witness through
/// `check_witness`, and cross-checks it against a fresh noise-free
/// simulation of the same placement (`check_agreement`).
fn trace_flight_dump(opts: &Options) -> Vec<Report> {
    let dir = opts.dump.as_deref().expect("dump mode implies --dump");
    let fail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let dump = duet_serve::FlightDump::load(std::path::Path::new(dir))
        .unwrap_or_else(|e| fail(format!("cannot load flight dump: {e}")));
    let model = dump
        .model()
        .unwrap_or_else(|| fail(format!("{dir}: manifest has no model name")))
        .to_string();
    let Some(witness) = &dump.witness else {
        fail(format!(
            "{dir}: no witness.json in the dump (the anomaly payload's replay run failed); \
             nothing to conformance-check"
        ));
    };
    let plan = SchedulePlan::from_json(&dump.plan_json)
        .unwrap_or_else(|e| fail(format!("{dir}/plan.json: {e}")));
    let system: duet_device::SystemModel = serde_json::from_str(&dump.system_json)
        .unwrap_or_else(|e| fail(format!("{dir}/system.json: {e}")));
    let spec = duet_serve::ModelSpec::serving_zoo(&model).unwrap_or_else(|| {
        fail(format!(
            "{dir}: dumped model {model:?} is not in the serving zoo"
        ))
    });
    let graph = spec.graph_at(plan.batch);
    let engine = match Duet::builder()
        .system(system)
        .build_with_plan(&graph, &plan)
    {
        Ok(e) => e,
        Err(e) => {
            let mut r = Report::new(format!("{model}:flight-dump"));
            r.push(duet_analysis::Diagnostic::error(
                duet_analysis::codes::PASS_FAILED,
                format!("engine rebuild from dumped plan failed: {e}"),
            ));
            return vec![r];
        }
    };
    let cfg = WitnessCheckConfig::default();
    let (_, sim_witness) = simulate_witnessed(
        engine.graph(),
        engine.placed(),
        engine.system(),
        &mut SimNoise::disabled(),
    );
    let reports = vec![
        check_witness(
            engine.graph(),
            engine.placed(),
            engine.system(),
            witness,
            &cfg,
        ),
        check_agreement(witness, &sim_witness, &cfg),
    ];
    if let Some(path) = &opts.out {
        write_file(path, &witness_to_chrome_trace(&model, witness));
    }
    reports
}

/// The `model-check` subcommand body: prove the `D5xx` interleaving
/// properties of one plan. Returns the report plus the (states, wall
/// microseconds) the summary and the CI gate aggregate.
fn model_check_model(name: &str, opts: &Options) -> (Vec<Report>, usize, f64) {
    let graph = known_model(name);
    let cfg = ModelCheckConfig {
        max_states: opts.max_states,
        ..Default::default()
    };
    let outcome = if let Some(path) = &opts.plan_path {
        // A supplied plan: check it against the optimized graph,
        // unpriced (no engine build, so no D503 occupancy bound).
        let plan = load_plan(path);
        let (optimized, pass_report) = check_optimize(&graph, CompileOptions::checked());
        let Some((optimized, _)) = optimized else {
            return (vec![pass_report], 0, 0.0);
        };
        duet_analysis::check_plan(&optimized, &plan.to_facts(), &cfg)
    } else {
        match Duet::builder().build(&graph) {
            Ok(engine) => engine.check_plan(&cfg),
            Err(e) => {
                let mut r = Report::new(format!("{name}:model-check"));
                r.push(duet_analysis::Diagnostic::error(
                    duet_analysis::codes::PASS_FAILED,
                    format!("engine build failed: {e}"),
                ));
                return (vec![r], 0, 0.0);
            }
        }
    };
    if let Some(path) = &opts.out {
        match &outcome.counterexample {
            Some(witness) => write_file(path, &witness_to_chrome_trace(name, witness)),
            None => eprintln!("{name}: clean — no counterexample to write"),
        }
    }
    if !opts.json {
        let s = &outcome.stats;
        println!(
            "{name}: {} state(s), {} transition(s), {} pruned, {:.2} ms{}",
            s.states,
            s.transitions,
            s.pruned,
            s.wall_us / 1e3,
            if s.truncated { " (truncated)" } else { "" },
        );
    }
    (
        vec![outcome.report],
        outcome.stats.states,
        outcome.stats.wall_us,
    )
}

/// The `dataflow` subcommand body: abstract-interpret one model's raw
/// graph (`D6xx`). Returns the report plus the analyzer's wall
/// microseconds, which the summary aggregates into a worst-model time
/// for the CI latency budget.
fn dataflow_model(name: &str, opts: &Options) -> (Vec<Report>, f64) {
    let graph = known_model(name);
    let t0 = std::time::Instant::now();
    let report = duet_analysis::check_dataflow(&graph);
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    if !opts.json {
        println!(
            "{name}: {} node(s), {} error(s), {} warning(s), {:.2} ms",
            graph.len(),
            report.error_count(),
            report.warning_count(),
            wall_us / 1e3,
        );
    }
    (vec![report], wall_us)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut mode = Mode::Lint;
    let mut opts = Options {
        plan_path: None,
        fast: false,
        json: false,
        deny_warnings: false,
        seed: 7,
        out: None,
        dump: None,
        max_states: ModelCheckConfig::default().max_states,
    };
    let mut it = args.into_iter().peekable();
    match it.peek().map(String::as_str) {
        Some("trace") => {
            mode = Mode::Trace;
            it.next();
        }
        Some("model-check") => {
            mode = Mode::ModelCheck;
            it.next();
        }
        Some("dataflow") => {
            mode = Mode::Dataflow;
            it.next();
        }
        _ => {}
    }
    let mut max_states_set = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => match it.next() {
                Some(p) => opts.plan_path = Some(p),
                None => usage(),
            },
            "--fast" => opts.fast = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => opts.seed = s,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => opts.out = Some(p),
                None => usage(),
            },
            "--dump" => match it.next() {
                Some(p) => opts.dump = Some(p),
                None => usage(),
            },
            "--max-states" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => {
                    opts.max_states = n;
                    max_states_set = true;
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            model => names.push(model.to_string()),
        }
    }
    // Per-mode flag validity.
    let flag_ok = match mode {
        Mode::Lint => {
            opts.out.is_none() && opts.seed == 7 && !max_states_set && opts.dump.is_none()
        }
        Mode::Trace => opts.plan_path.is_none() && !opts.fast && !max_states_set,
        Mode::ModelCheck => !opts.fast && opts.seed == 7 && opts.dump.is_none(),
        Mode::Dataflow => {
            opts.plan_path.is_none()
                && !opts.fast
                && opts.out.is_none()
                && opts.seed == 7
                && !max_states_set
                && opts.dump.is_none()
        }
    };
    // `trace --dump <dir>` names no model: the dump's manifest does.
    let dump_mode = mode == Mode::Trace && opts.dump.is_some();
    if dump_mode && (!names.is_empty() || opts.seed != 7) {
        eprintln!("--dump replays the dumped request; it takes no model or --seed");
        usage();
    }
    if (names.is_empty() && !dump_mode) || !flag_ok {
        usage();
    }
    if dump_mode {
        names.push("flight-dump".to_string());
    }
    if names.iter().any(|n| n == "all") {
        if opts.plan_path.is_some() {
            eprintln!("--plan needs a single model");
            usage();
        }
        if opts.out.is_some() {
            eprintln!("--out needs a single model");
            usage();
        }
        names = MODELS.iter().map(|s| s.to_string()).collect();
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut total_states = 0usize;
    let mut total_wall_us = 0.0f64;
    let mut max_wall_us = 0.0f64;
    let mut json_reports = Vec::new();
    for name in &names {
        let reports = match mode {
            Mode::Trace if dump_mode => trace_flight_dump(&opts),
            Mode::Trace => trace_model(name, &opts),
            Mode::Lint => lint_model(name, &opts),
            Mode::ModelCheck => {
                let (reports, states, wall_us) = model_check_model(name, &opts);
                total_states += states;
                total_wall_us += wall_us;
                reports
            }
            Mode::Dataflow => {
                let (reports, wall_us) = dataflow_model(name, &opts);
                total_wall_us += wall_us;
                max_wall_us = max_wall_us.max(wall_us);
                reports
            }
        };
        for report in reports {
            errors += report.error_count();
            warnings += report.warning_count();
            if opts.json {
                json_reports.push(report.to_json());
            } else if report.is_clean() {
                println!("{}: clean", report.subject);
            } else {
                print!("{report}");
            }
        }
    }
    if opts.json {
        let rendered = serde_json::to_string_pretty(&serde_json::Value::Array(json_reports))
            .expect("report serializes");
        println!("{rendered}");
    } else if mode == Mode::ModelCheck {
        println!(
            "model-check: {} plan(s), {total_states} state(s), {:.2} ms total, \
             {errors} error(s), {warnings} warning(s)",
            names.len(),
            total_wall_us / 1e3,
        );
    } else if mode == Mode::Dataflow {
        println!(
            "dataflow: {} model(s), {:.2} ms total, worst {:.2} ms/model, \
             {errors} error(s), {warnings} warning(s)",
            names.len(),
            total_wall_us / 1e3,
            max_wall_us / 1e3,
        );
    } else {
        println!(
            "{} model(s): {errors} error(s), {warnings} warning(s)",
            names.len()
        );
    }
    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
