//! `duet` — command-line front end for the engine.
//!
//! ```text
//! duet list                                # available zoo models
//! duet report wide_and_deep                # placement report (Table II row)
//! duet schedule mtdnn --policy round-robin # compare a policy
//! duet run siamese                         # execute one real inference
//! duet measure wide_and_deep --runs 5000   # latency distribution
//! duet analyze mtdnn                       # structural metrics
//! duet export-plan siamese plan.json       # save the offline decision
//! duet apply-plan siamese plan.json        # reload it (no re-scheduling)
//! duet tune all --drift                    # autotune the zoo under drift
//! duet insight render <dump> out.json      # flight dump -> Perfetto timeline
//! duet insight attribution <dump>          # per-segment latency table
//! duet insight diff <dump-a> <dump-b>      # compare two flight dumps
//! ```

use std::collections::HashMap;

use duet_core::{Duet, SchedulePolicy};
use duet_device::DeviceKind;
use duet_models::{input_feeds, zoo_model};

const MODELS: &[&str] = &[
    "wide_and_deep",
    "siamese",
    "mtdnn",
    "resnet18",
    "resnet50",
    "vgg16",
    "squeezenet",
    "mobilenet",
];

fn usage() -> ! {
    eprintln!(
        "usage:\n  duet list\n  duet report <model>\n  duet schedule <model> [--policy <p>]\n  \
         duet run <model>\n  duet measure <model> [--runs <n>]\n  duet analyze <model>\n  \
         duet export-plan <model> <file>\n  duet apply-plan <model> <file>\n  \
         duet save <model> <file>\n  duet report-file <file>\n  duet explain <model>\n  \
         duet trace <model> <file> [--full]\n  \
         duet tune <model|all> [--budget <n>] [--seed <n>] [--drift] [--cache <dir>] \
         [--json <file>] [--metrics-out <file>]\n  \
         duet insight render <dump-dir> <out.json>\n  \
         duet insight attribution <dump-dir>\n  \
         duet insight diff <dump-dir-a> <dump-dir-b>\n\nmodels: {}\npolicies: \
         greedy-correction | greedy | random | round-robin | random-correction | ideal | \
         flops-proxy | cpu | gpu\n\nonline serving lives in its own binary: \
         cargo run --release -p duet-serve --bin duet-serve -- --help",
        MODELS.join(", ")
    );
    std::process::exit(2);
}

fn parse_policy(name: &str) -> SchedulePolicy {
    match name {
        "greedy-correction" => SchedulePolicy::GreedyCorrection,
        "greedy" => SchedulePolicy::GreedyOnly,
        "random" => SchedulePolicy::Random { seed: 0 },
        "round-robin" => SchedulePolicy::RoundRobin,
        "random-correction" => SchedulePolicy::RandomCorrection { seed: 0 },
        "ideal" => SchedulePolicy::Ideal,
        "flops-proxy" => SchedulePolicy::FlopsProxy,
        "cpu" => SchedulePolicy::Pin(DeviceKind::Cpu),
        "gpu" => SchedulePolicy::Pin(DeviceKind::Gpu),
        other => {
            eprintln!("unknown policy {other}");
            usage()
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn model_or_die(name: &str) -> duet_ir::Graph {
    zoo_model(name).unwrap_or_else(|| {
        eprintln!("unknown model {name}");
        usage()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r.to_vec()),
        None => usage(),
    };
    match cmd {
        "list" => {
            for m in MODELS {
                let g = zoo_model(m).expect("zoo model");
                println!(
                    "{m:<16} {:>4} operators  {:>8.1} MB params",
                    g.compute_ids().len(),
                    g.param_bytes() as f64 / 1e6
                );
            }
        }
        "report" | "schedule" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let policy = flag(&rest, "--policy")
                .map(|p| parse_policy(&p))
                .unwrap_or(SchedulePolicy::GreedyCorrection);
            let graph = model_or_die(model);
            let engine = Duet::builder()
                .policy(policy)
                .build(&graph)
                .expect("engine builds");
            print!("{}", engine.placement_report());
        }
        "run" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            let engine = Duet::builder().build(&graph).expect("engine builds");
            let feeds: HashMap<_, _> = input_feeds(engine.graph(), 0);
            let out = engine.run(&feeds).expect("inference runs");
            println!(
                "virtual latency {:.3} ms (host wall {:?})",
                out.virtual_latency_us / 1e3,
                out.wall_time
            );
            for (&id, v) in &out.outputs {
                let d = v.data();
                let preview: Vec<String> = d.iter().take(4).map(|x| format!("{x:.4}")).collect();
                println!(
                    "  output {:<18} {} [{}{}]",
                    engine.graph().node(id).label,
                    v.shape(),
                    preview.join(", "),
                    if d.len() > 4 { ", …" } else { "" }
                );
            }
        }
        "analyze" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            println!("{model}:");
            print!("{}", duet_ir::analyze(&graph));
        }
        "export-plan" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let path = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            let engine = Duet::builder().build(&graph).expect("engine builds");
            std::fs::write(path, engine.export_plan().to_json()).expect("plan written");
            println!(
                "plan for {model} written to {path} (expected latency {:.3} ms)",
                engine.latency_us() / 1e3
            );
        }
        "apply-plan" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let path = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            let text = std::fs::read_to_string(path).expect("plan readable");
            let plan = duet_core::SchedulePlan::from_json(&text).expect("plan parses");
            match Duet::builder().build_with_plan(&graph, &plan) {
                Ok(engine) => print!("{}", engine.placement_report()),
                Err(e) => {
                    eprintln!("plan rejected: {e}");
                    std::process::exit(1);
                }
            }
        }
        "save" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let path = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            let bytes = duet_ir::encode(&graph);
            std::fs::write(path, &bytes).expect("model written");
            println!(
                "{model} saved to {path} ({:.1} MB)",
                bytes.len() as f64 / 1e6
            );
        }
        "report-file" => {
            let path = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let bytes = std::fs::read(path).expect("model readable");
            let graph = match duet_ir::decode(bytes) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("cannot load {path}: {e}");
                    std::process::exit(1);
                }
            };
            let engine = Duet::builder().build(&graph).expect("engine builds");
            print!("{}", engine.placement_report());
        }
        "explain" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let graph = model_or_die(model);
            let engine = Duet::builder().build(&graph).expect("engine builds");
            print!("{}", duet_core::explain(&engine));
        }
        "trace" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let path = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let full = rest.iter().any(|a| a == "--full");
            let graph = model_or_die(model);
            if full {
                // Merged timeline: reset the span ring, run the whole
                // pipeline (compile → profile → schedule) plus one
                // witnessed inference, then interleave the collected
                // telemetry spans with the witness lanes.
                duet_telemetry::set_enabled(true);
                duet_telemetry::reset_spans();
                let engine = Duet::builder().build(&graph).expect("engine builds");
                let feeds = input_feeds(&graph, 7);
                let (_, witness) = engine.run_witnessed(&feeds).expect("model runs");
                let spans = duet_telemetry::spans();
                std::fs::write(
                    path,
                    duet_runtime::merged_perfetto_trace(model, &witness, &spans),
                )
                .expect("trace written");
                println!(
                    "merged timeline for {model} written to {path}: {} telemetry spans \
                     across compile/profile/schedule/execute plus witness lanes \
                     (open in ui.perfetto.dev)",
                    spans.len()
                );
            } else {
                let engine = Duet::builder().build(&graph).expect("engine builds");
                let sim = duet_runtime::simulate(
                    engine.graph(),
                    engine.placed(),
                    engine.system(),
                    &mut duet_runtime::SimNoise::disabled(),
                );
                std::fs::write(path, duet_runtime::to_chrome_trace(model, &sim))
                    .expect("trace written");
                println!("timeline for {model} written to {path} (open in ui.perfetto.dev)");
            }
        }
        "measure" => {
            let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
            let runs: usize = flag(&rest, "--runs")
                .map(|r| r.parse().expect("numeric --runs"))
                .unwrap_or(5000);
            let graph = model_or_die(model);
            let engine = Duet::builder().build(&graph).expect("engine builds");
            let s = engine.measure(runs, 0xC11);
            println!(
                "{model}: mean {:.3} ms  p50 {:.3}  p99 {:.3}  p99.9 {:.3}  (n={})",
                s.mean() / 1e3,
                s.p50() / 1e3,
                s.p99() / 1e3,
                s.p999() / 1e3,
                s.count()
            );
        }
        "tune" => cmd_tune(&rest),
        "insight" => cmd_insight(&rest),
        _ => usage(),
    }
}

/// `duet insight <render|attribution|diff>` — offline analysis of the
/// anomaly flight dumps `duet-serve --flight-dir` writes: merge a
/// dump's span trees into one Perfetto timeline, print its per-segment
/// tail-latency attribution, or compare two dumps side by side.
fn cmd_insight(rest: &[String]) {
    use duet_serve::{AttributionSummary, FlightDump};

    let load = |dir: &str| -> FlightDump {
        FlightDump::load(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("cannot load flight dump: {e}");
            std::process::exit(2);
        })
    };
    let header = |dir: &str, d: &FlightDump| {
        println!(
            "dump {dir}: model {} | rule {} | trigger trace {} | {} traces",
            d.model().unwrap_or("?"),
            d.rule().unwrap_or("?"),
            d.trigger_trace_id(),
            d.traces.len()
        );
    };
    let verb = rest.first().map(String::as_str).unwrap_or_else(|| usage());
    match verb {
        "render" => {
            let dir = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let out = rest.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let dump = load(dir);
            let Some(witness) = &dump.witness else {
                eprintln!("dump {dir} carries no witness.json; cannot render the virtual lanes");
                std::process::exit(2);
            };
            // Every member of a batch carries its own copy of the shared
            // batch/executor spans, so merge the trees deduplicating by
            // span id (untraced spans have id 0 and are all kept).
            let mut seen = std::collections::HashSet::new();
            let mut spans = Vec::new();
            for t in &dump.traces {
                for s in &t.spans {
                    if s.span_id == 0 || seen.insert(s.span_id) {
                        spans.push(*s);
                    }
                }
            }
            spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            let model = dump.model().unwrap_or("unknown").to_string();
            std::fs::write(
                out,
                duet_runtime::merged_perfetto_trace(&model, witness, &spans),
            )
            .expect("trace written");
            header(dir, &dump);
            println!(
                "merged timeline: {} spans across {} request trees written to {out} \
                 (open in ui.perfetto.dev)",
                spans.len(),
                dump.traces.len()
            );
        }
        "attribution" => {
            let dir = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let dump = load(dir);
            header(dir, &dump);
            let samples: Vec<_> = dump.traces.iter().map(|t| t.attribution).collect();
            print!(
                "{}",
                AttributionSummary::from_samples(&samples).render_table()
            );
            if let Some(w) = dump
                .traces
                .iter()
                .max_by(|a, b| a.sojourn_us.total_cmp(&b.sojourn_us))
            {
                println!(
                    "worst sojourn: trace {} at {:.1} us (batch {}, epoch {})",
                    w.trace_id, w.sojourn_us, w.batch, w.epoch
                );
            }
        }
        "diff" => {
            let dir_a = rest.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let dir_b = rest.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let (a, b) = (load(dir_a), load(dir_b));
            header(dir_a, &a);
            header(dir_b, &b);
            let fp = |d: &FlightDump| {
                d.manifest
                    .get("plan_fingerprint")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0)
            };
            if fp(&a) != fp(&b) {
                println!(
                    "plan fingerprints differ: {:#018x} vs {:#018x} (a plan swap happened between dumps)",
                    fp(&a),
                    fp(&b)
                );
            }
            let sum_a = AttributionSummary::from_samples(
                &a.traces.iter().map(|t| t.attribution).collect::<Vec<_>>(),
            );
            let sum_b = AttributionSummary::from_samples(
                &b.traces.iter().map(|t| t.attribution).collect::<Vec<_>>(),
            );
            println!(
                "  {:<12} {:>12} {:>12} {:>12}",
                "segment", "mean_a_us", "mean_b_us", "delta_us"
            );
            for sa in &sum_a.segments {
                let mean_b = sum_b
                    .segments
                    .iter()
                    .find(|sb| sb.segment == sa.segment)
                    .map_or(0.0, |sb| sb.mean_us);
                println!(
                    "  {:<12} {:>12.1} {:>12.1} {:>+12.1}",
                    sa.segment,
                    sa.mean_us,
                    mean_b,
                    mean_b - sa.mean_us
                );
            }
        }
        other => {
            eprintln!("unknown insight verb {other} (render | attribution | diff)");
            usage()
        }
    }
}

/// `duet tune <model|all>` — search placements with the simulator
/// oracle, prove the winner (D2xx + D5xx), optionally persist it, and
/// report speedup vs Algorithm 1 — or, with `--drift`, vs the stale
/// plan under a degraded deployment (the serving hot-swap scenario).
/// Exits nonzero if any run comes back worse than Algorithm 1 or fails
/// promotion.
fn cmd_tune(rest: &[String]) {
    let model = rest.first().map(String::as_str).unwrap_or_else(|| usage());
    let cfg = duet_tune::TuneConfig {
        seed: flag(rest, "--seed")
            .map(|s| s.parse().expect("numeric --seed"))
            .unwrap_or(0xD0E7),
        budget: flag(rest, "--budget")
            .map(|b| b.parse().expect("numeric --budget"))
            .unwrap_or(2000),
        ..duet_tune::TuneConfig::default()
    };
    let drift = rest.iter().any(|a| a == "--drift");
    let cache = flag(rest, "--cache").map(|dir| {
        duet_tune::TuneCache::open(&dir).unwrap_or_else(|e| {
            eprintln!("cannot open tune cache {dir}: {e}");
            std::process::exit(1);
        })
    });
    let names: Vec<&str> = if model == "all" {
        MODELS.to_vec()
    } else {
        vec![model]
    };

    let mut failed = false;
    let mut rows = Vec::new();
    for name in &names {
        let graph = model_or_die(name);
        let engine = Duet::builder().build(&graph).expect("engine builds");
        let out = if drift {
            // The canonical drift scenario (duet-serve's smoke test):
            // the GPU loses most of its compute, bandwidth and launch
            // throughput, and the tuner races the stale plan.
            let mut deployed = engine.system().clone();
            deployed.gpu.peak_gflops /= 12.0;
            deployed.gpu.mem_bw_gbps /= 8.0;
            deployed.gpu.kernel_launch_us *= 8.0;
            duet_tune::tune_drifted(&engine, deployed, &cfg)
        } else {
            duet_tune::tune(&engine, &cfg)
        };
        println!("{out}");
        if !out.promoted || out.tuned_us > out.algorithm1_us {
            failed = true;
        }
        if let Some(cache) = &cache {
            if out.promoted {
                match cache.store(&out.plan) {
                    Ok(path) => println!("  cached: {}", path.display()),
                    Err(e) => {
                        eprintln!("  cache store failed: {e}");
                        failed = true;
                    }
                }
            }
        }
        println!();
        rows.push(serde_json::json!({
            "model": out.model,
            "algorithm1_us": out.algorithm1_us,
            "tuned_us": out.tuned_us,
            "stale_us": out.stale_us,
            "speedup": out.speedup(),
            "speedup_vs_stale": out.speedup_vs_stale(),
            "winner": out.winner,
            "cost_model": out.cost_model,
            "fitted_buckets": out.fitted_buckets,
            "candidates": out.candidates,
            "wall_us": out.wall_us,
            "critical_path_lb_us": out.critical_path_lb_us,
            "promoted": out.promoted,
            // Per-strategy search cost in oracle evaluations (wall time
            // stays top-level only, keeping this block deterministic).
            "strategies": out.strategies.iter().map(|s| serde_json::json!({
                "name": s.name,
                "makespan_us": s.makespan_us,
                "evaluated": s.evaluated,
            })).collect::<Vec<_>>(),
        }));
    }

    let better = rows
        .iter()
        .filter(|r| r["speedup"].as_f64() > Some(1.0))
        .count();
    let worse = rows
        .iter()
        .filter(|r| r["speedup"].as_f64() < Some(1.0))
        .count();
    println!(
        "tuned {} model(s): {} strictly better than Algorithm 1, {} tie(s), {} worse",
        rows.len(),
        better,
        rows.len() - better - worse,
        worse
    );
    if let Some(path) = flag(rest, "--json") {
        let doc = serde_json::json!({ "drift": drift, "runs": rows });
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&doc).expect("serializes"),
        )
        .expect("json written");
        println!("json report written to {path}");
    }
    if let Some(path) = flag(rest, "--metrics-out") {
        std::fs::write(&path, duet_telemetry::prometheus_text()).expect("metrics written");
        println!("metrics exposition dumped to {path}");
    }
    if failed {
        eprintln!("FAIL: a run regressed vs Algorithm 1 or failed promotion");
        std::process::exit(1);
    }
}
