//! # DUET
//!
//! A reproduction of *DUET: A Compiler-Runtime Subgraph Scheduling Approach
//! for Tensor Programs on a Coupled CPU-GPU Architecture* (IPDPS 2021).
//!
//! This facade crate re-exports the whole workspace so applications can use
//! a single dependency:
//!
//! ```
//! use duet::prelude::*;
//!
//! // Build a model from the zoo, optimize it with DUET, run it.
//! let model = wide_and_deep(&WideAndDeepConfig::default());
//! let engine = Duet::builder().build(&model).unwrap();
//! let report = engine.placement_report();
//! assert!(!report.subgraphs.is_empty());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use duet_compiler as compiler;
pub use duet_core as core;
pub use duet_device as device;
pub use duet_frameworks as frameworks;
pub use duet_ir as ir;
pub use duet_models as models;
pub use duet_runtime as runtime;
pub use duet_tensor as tensor;

/// The most common imports, in one place.
pub mod prelude {
    pub use duet_compiler::{CompileOptions, Compiler};
    pub use duet_core::{Duet, DuetBuilder, SchedulePolicy};
    pub use duet_device::{DeviceKind, DeviceModel, SystemModel};
    pub use duet_ir::{Graph, GraphBuilder, Op};
    pub use duet_models::{
        mtdnn, resnet, siamese, wide_and_deep, MtDnnConfig, ResNetConfig, SiameseConfig,
        WideAndDeepConfig,
    };
    pub use duet_runtime::{LatencyStats, Profiler};
    pub use duet_tensor::{Shape, Tensor};
}
