//! Reproducibility guarantees: everything in the pipeline is
//! deterministic given its seeds — the property that makes every number
//! in EXPERIMENTS.md regenerable.

use duet::prelude::*;
use duet_core::SchedulePolicy;
use duet_device::DeviceKind;
use duet_models::input_feeds;

#[test]
fn engine_build_is_deterministic() {
    let model = siamese(&SiameseConfig::small());
    let a = Duet::builder().build(&model).unwrap();
    let b = Duet::builder().build(&model).unwrap();
    assert_eq!(a.latency_us(), b.latency_us());
    assert_eq!(a.fallback_device(), b.fallback_device());
    let da: Vec<DeviceKind> = a.placed().iter().map(|p| p.device).collect();
    let db: Vec<DeviceKind> = b.placed().iter().map(|p| p.device).collect();
    assert_eq!(da, db);
}

#[test]
fn measurement_deterministic_per_seed() {
    let model = wide_and_deep(&WideAndDeepConfig::small());
    let engine = Duet::builder().build(&model).unwrap();
    let s1 = engine.measure(300, 7);
    let s2 = engine.measure(300, 7);
    let s3 = engine.measure(300, 8);
    assert_eq!(s1.mean(), s2.mean());
    assert_eq!(s1.p99(), s2.p99());
    assert_ne!(s1.mean(), s3.mean());
}

#[test]
fn random_policy_deterministic_per_seed() {
    let model = siamese(&SiameseConfig::small());
    let lat = |seed| {
        Duet::builder()
            .policy(SchedulePolicy::Random { seed })
            .no_fallback()
            .build(&model)
            .unwrap()
            .latency_us()
    };
    assert_eq!(lat(5), lat(5));
}

#[test]
fn model_weights_and_feeds_reproducible() {
    let a = mtdnn(&MtDnnConfig::small());
    let b = mtdnn(&MtDnnConfig::small());
    let fa = input_feeds(&a, 9);
    let fb = input_feeds(&b, 9);
    let oa = a.eval(&fa).unwrap();
    let ob = b.eval(&fb).unwrap();
    for (x, y) in oa.iter().zip(&ob) {
        assert_eq!(x, y, "bitwise identical across rebuilds");
    }
}

#[test]
fn threaded_executor_bitwise_stable_across_runs() {
    let model = mtdnn(&MtDnnConfig::small());
    let engine = Duet::builder().no_fallback().build(&model).unwrap();
    let feeds = input_feeds(engine.graph(), 4);
    let first = engine.run(&feeds).unwrap();
    for _ in 0..5 {
        let again = engine.run(&feeds).unwrap();
        for (&id, v) in &first.outputs {
            assert_eq!(&again.outputs[&id], v, "run-to-run numeric drift");
        }
    }
}
