//! Cross-crate integration tests: the whole pipeline — model zoo →
//! compiler → partitioner → profiler → scheduler → executor — produces
//! numerically correct results and paper-consistent decisions.

use std::collections::HashMap;

use duet::prelude::*;
use duet_core::SchedulePolicy;
use duet_device::DeviceKind;
use duet_frameworks::Framework;
use duet_ir::Graph;
use duet_models::{input_feeds, mlp, squeezenet, MlpConfig};

fn small_zoo() -> Vec<Graph> {
    vec![
        wide_and_deep(&WideAndDeepConfig::small()),
        siamese(&SiameseConfig::small()),
        mtdnn(&MtDnnConfig::small()),
        resnet(&ResNetConfig::small()),
        mlp(&MlpConfig {
            input: 16,
            hidden: 32,
            ..Default::default()
        }),
        squeezenet(1, 32),
    ]
}

#[test]
fn heterogeneous_execution_matches_reference_on_every_model() {
    for model in small_zoo() {
        let engine = Duet::builder()
            .no_fallback()
            .build(&model)
            .expect("engine builds");
        let feeds = input_feeds(engine.graph(), 11);
        let outcome = engine.run(&feeds).expect("inference runs");
        let want = engine.graph().eval(&feeds).expect("reference eval");
        for (i, &out_id) in engine.graph().outputs().iter().enumerate() {
            assert!(
                outcome.outputs[&out_id].approx_eq(&want[i], 1e-4),
                "{}: output {i} diverged",
                model.name
            );
        }
    }
}

#[test]
fn every_policy_produces_a_valid_runnable_schedule() {
    let model = siamese(&SiameseConfig::small());
    for policy in [
        SchedulePolicy::GreedyCorrection,
        SchedulePolicy::GreedyOnly,
        SchedulePolicy::Random { seed: 3 },
        SchedulePolicy::RoundRobin,
        SchedulePolicy::RandomCorrection { seed: 3 },
        SchedulePolicy::Ideal,
        SchedulePolicy::Pin(DeviceKind::Cpu),
        SchedulePolicy::Pin(DeviceKind::Gpu),
    ] {
        let engine = Duet::builder()
            .policy(policy)
            .no_fallback()
            .build(&model)
            .expect("engine builds");
        let feeds = input_feeds(engine.graph(), 2);
        let outcome = engine.run(&feeds).expect("inference runs");
        let want = engine.graph().eval(&feeds).expect("reference");
        let out_id = engine.graph().outputs()[0];
        assert!(
            outcome.outputs[&out_id].approx_eq(&want[0], 1e-4),
            "policy {policy:?} diverged"
        );
    }
}

#[test]
fn framework_baseline_agrees_with_duet_numerically() {
    let model = wide_and_deep(&WideAndDeepConfig::small());
    let feeds = input_feeds(&model, 5);
    let fw_out = Framework::pytorch()
        .run(&model, &feeds)
        .expect("framework runs");
    let reference = model.eval(&feeds).expect("reference");
    assert!(fw_out[&model.outputs()[0]].approx_eq(&reference[0], 1e-5));
}

#[test]
fn fallback_schedule_still_runs_numerically() {
    let model = resnet(&ResNetConfig::small());
    let engine = Duet::builder().build(&model).expect("engine builds");
    let feeds = input_feeds(engine.graph(), 3);
    let outcome = engine.run(&feeds).expect("inference runs");
    let want = engine.graph().eval(&feeds).expect("reference");
    let out_id = engine.graph().outputs()[0];
    assert!(outcome.outputs[&out_id].approx_eq(&want[0], 1e-4));
}

#[test]
fn optimized_graph_preserves_model_semantics() {
    // Compare each model's output before/after the compiler pipeline by
    // matching input nodes by label.
    for model in small_zoo() {
        let engine = Duet::builder().build(&model).expect("engine builds");
        let opt = engine.graph();
        let feeds_orig = input_feeds(&model, 21);
        // Rebuild the same feeds for the optimized graph via labels.
        let by_label: HashMap<&str, &duet_tensor::Tensor> = model
            .input_ids()
            .iter()
            .map(|&id| (model.node(id).label.as_str(), &feeds_orig[&id]))
            .collect();
        let feeds_opt: HashMap<_, _> = opt
            .input_ids()
            .into_iter()
            .map(|id| (id, by_label[opt.node(id).label.as_str()].clone()))
            .collect();
        let a = model.eval(&feeds_orig).expect("original eval");
        let b = opt.eval(&feeds_opt).expect("optimized eval");
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.approx_eq(y, 1e-4),
                "{}: optimization changed results",
                model.name
            );
        }
    }
}

#[test]
fn paper_headline_results_hold() {
    // The three complex models co-execute and win; speedup bands overlap
    // the paper's reported ranges.
    for (model, lo_gpu, hi_gpu) in [
        (wide_and_deep(&WideAndDeepConfig::default()), 1.3, 4.5),
        (siamese(&SiameseConfig::default()), 1.3, 3.0),
        (mtdnn(&MtDnnConfig::default()), 1.3, 4.5),
    ] {
        let engine = Duet::builder().build(&model).expect("engine builds");
        assert!(
            engine.fallback_device().is_none(),
            "{} must co-execute",
            model.name
        );
        let x_gpu = engine.single_device_latency_us(DeviceKind::Gpu) / engine.latency_us();
        let x_cpu = engine.single_device_latency_us(DeviceKind::Cpu) / engine.latency_us();
        assert!(
            (lo_gpu..hi_gpu).contains(&x_gpu),
            "{}: vs GPU {x_gpu}",
            model.name
        );
        assert!(x_cpu > 1.3, "{}: vs CPU {x_cpu}", model.name);
    }
    // And the traditional model does not.
    let engine = Duet::builder()
        .build(&resnet(&ResNetConfig::default()))
        .expect("engine builds");
    assert_eq!(engine.fallback_device(), Some(DeviceKind::Gpu));
}

#[test]
fn executor_distributes_work_across_devices() {
    let model = siamese(&SiameseConfig::default());
    let engine = Duet::builder().build(&model).expect("engine builds");
    // Replace the heavy default with a small numeric twin for execution:
    // same structure, tiny dims.
    let small = siamese(&SiameseConfig::small());
    let small_engine = Duet::builder().no_fallback().build(&small).expect("builds");
    let feeds = input_feeds(small_engine.graph(), 1);
    let outcome = small_engine.run(&feeds).expect("runs");
    let cpu = outcome.tasks_per_device[&DeviceKind::Cpu];
    let gpu = outcome.tasks_per_device[&DeviceKind::Gpu];
    assert_eq!(cpu + gpu, small_engine.placed().len());
    // The big engine's schedule genuinely uses both devices.
    let devices: Vec<DeviceKind> = engine.placed().iter().map(|p| p.device).collect();
    assert!(devices.contains(&DeviceKind::Cpu) && devices.contains(&DeviceKind::Gpu));
}
