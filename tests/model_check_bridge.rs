//! The static→dynamic bridge for the `D5xx` model checker.
//!
//! Two directions, both required for the checker to mean anything:
//!
//! * **Soundness of "clean"**: a plan the checker proves `D5xx`-clean
//!   must actually run deadlock-free and bit-identically under seeded
//!   [`DelayInjection`] interleaving stress — property-tested over the
//!   delay-seed space on genuinely heterogeneous schedules of the
//!   zoo's multi-path architectures.
//! * **Soundness of "dirty"**: when the checker condemns a plan, its
//!   synthetic counterexample witness must reproduce as a `D3xx`
//!   violation in the *dynamic* conformance checker — the static
//!   finding is a real run the runtime rules would reject, not an
//!   artifact of the abstraction.
//!
//! The clean direction stresses `::small()` configs of the zoo's
//! heterogeneous architectures with explicitly chunked two-device
//! schedules (the `interleave.rs` idiom): full-size zoo inference takes
//! seconds per run in debug builds, and the zoo's fallback plans
//! serialize on one device lane, where delay injection cannot reorder
//! anything. The full-size zoo plans themselves are proven clean here
//! too — statically, which is milliseconds — and again in release mode
//! by the `duet-lint model-check all` CI gate.

use std::sync::OnceLock;

use duet_analysis::plan_lint::{PlanFacts, PlanSubgraphFacts};
use duet_analysis::{check_plan_model, check_witness, codes, ModelCheckConfig, WitnessCheckConfig};
use duet_compiler::Compiler;
use duet_core::Duet;
use duet_device::{DeviceKind, SystemModel};
use duet_ir::{fingerprint, Graph, NodeId};
use duet_models::{
    input_feeds, mtdnn, siamese, wide_and_deep, zoo_model, MtDnnConfig, SiameseConfig,
    WideAndDeepConfig,
};
use duet_runtime::{DelayInjection, HeterogeneousExecutor, Placed};
use proptest::prelude::*;

const ZOO: &[&str] = &[
    "wide_and_deep",
    "siamese",
    "mtdnn",
    "resnet18",
    "resnet50",
    "vgg16",
    "squeezenet",
    "mobilenet",
];

/// One engine per zoo model, built once (short profiling: the plans are
/// the same decisions, just cheaper to reach).
fn engines() -> &'static Vec<Duet> {
    static ENGINES: OnceLock<Vec<Duet>> = OnceLock::new();
    ENGINES.get_or_init(|| {
        ZOO.iter()
            .map(|name| {
                Duet::builder()
                    .profile_runs(20, 3)
                    .build(&zoo_model(name).expect("zoo model exists"))
                    .expect("zoo engine builds")
            })
            .collect()
    })
}

#[test]
fn every_zoo_plan_is_d5xx_clean() {
    for (name, engine) in ZOO.iter().zip(engines()) {
        let outcome = engine.check_plan(&ModelCheckConfig::default());
        assert!(
            !outcome.report.has_errors(),
            "{name} plan must prove clean:\n{}",
            outcome.report
        );
        assert!(!outcome.stats.truncated, "{name}: exploration completed");
    }
}

/// The zoo's heterogeneous architectures at `::small()` scale — fast
/// enough to run thousands of times in a debug build.
fn small_graph(idx: usize) -> Graph {
    match idx {
        0 => wide_and_deep(&WideAndDeepConfig::small()),
        1 => siamese(&SiameseConfig::small()),
        _ => mtdnn(&MtDnnConfig::small()),
    }
}

/// Split a graph's compute nodes into `k` contiguous topo-order chunks,
/// alternating devices — always a valid heterogeneous schedule.
fn chunked(graph: &Graph, k: usize) -> (Vec<Placed>, Vec<Vec<NodeId>>) {
    let c = Compiler::default();
    let ids = graph.compute_ids();
    let k = k.clamp(1, ids.len());
    let chunk = ids.len().div_ceil(k);
    let node_sets: Vec<Vec<NodeId>> = ids.chunks(chunk).map(<[NodeId]>::to_vec).collect();
    let placed = node_sets
        .iter()
        .enumerate()
        .map(|(i, nodes)| Placed {
            sg: c.compile_nodes(graph, nodes, format!("c{i}")),
            device: if i % 2 == 0 {
                DeviceKind::Cpu
            } else {
                DeviceKind::Gpu
            },
        })
        .collect();
    (placed, node_sets)
}

/// Model exactly the schedule the executor will run: same node chunks,
/// same devices, triggers derived the same way the executor derives
/// them (from cross-subgraph dataflow).
fn model_of(
    graph: &Graph,
    placed: &[Placed],
    node_sets: &[Vec<NodeId>],
) -> duet_analysis::PlanModel {
    let facts = PlanFacts {
        model: graph.name.clone(),
        fingerprint: fingerprint(graph),
        batch: 1,
        expected_latency_us: None,
        fallback: false,
        critical_path_lb_us: None,
        subgraphs: placed
            .iter()
            .zip(node_sets)
            .map(|(p, nodes)| PlanSubgraphFacts {
                name: p.sg.name.clone(),
                phase: 0,
                multi_path: false,
                nodes: nodes.clone(),
                device: p.device,
            })
            .collect(),
    };
    duet_analysis::PlanModel::from_facts(graph, &facts).expect("chunked schedule is modelable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The bridge property proper: any chunked two-device schedule the
    /// checker proves D5xx-clean, stressed with an arbitrary delay
    /// seed, completes (deadlock-freedom made operational) and
    /// reproduces the undelayed reference outputs bit for bit
    /// (schedule-determinism made operational).
    #[test]
    fn clean_plans_run_deadlock_free_and_bit_identical(
        arch in 0usize..3,
        k in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let graph = small_graph(arch);
        let (placed, node_sets) = chunked(&graph, k);
        let model = model_of(&graph, &placed, &node_sets);
        let outcome = check_plan_model(&model, &ModelCheckConfig::default());
        prop_assert!(
            !outcome.report.has_errors(),
            "chunked schedule must prove clean first:\n{}",
            outcome.report
        );

        let sys = SystemModel::paper_server();
        let feeds = input_feeds(&graph, 42);
        let reference = HeterogeneousExecutor::new(&graph, &placed, sys.clone())
            .run(&feeds)
            .expect("reference run succeeds");
        // A deadlocked dispatch would hang rather than return: the run
        // completing at all is the deadlock-freedom half of the bridge.
        let out = HeterogeneousExecutor::new(&graph, &placed, sys)
            .with_delays(DelayInjection::new(seed, 150))
            .run(&feeds)
            .unwrap_or_else(|e| panic!("{}: k={k} seed={seed}: {e}", graph.name));
        prop_assert_eq!(reference.outputs.len(), out.outputs.len());
        for (id, want) in &reference.outputs {
            prop_assert!(
                out.outputs.get(id) == Some(want),
                "{}: k={k} seed={seed}: output {id} not bit-identical",
                graph.name,
            );
        }
        let executed: usize = out.tasks_per_device.values().sum();
        prop_assert_eq!(executed, placed.len(), "lost or extra task");
    }
}

/// When the checker *does* condemn a plan, its counterexample is a
/// witness the dynamic `D3xx` checker also rejects — specifically with
/// `D303` (happens-before order): the consumer's start is committed
/// before its producer's finish in the event log.
#[test]
fn counterexample_reproduces_as_d3xx_witness_violation() {
    // siamese: the smallest non-fallback zoo plan, so the engine's
    // placed schedule is exactly the heterogeneous plan the model
    // checker models (witness subgraph indices line up).
    let engine = &engines()[1];
    assert!(
        engine.fallback_device().is_none(),
        "siamese is heterogeneous"
    );
    let mut model = engine.plan_model().expect("plan is modelable");
    let (consumer, producer) = model
        .subgraphs
        .iter()
        .enumerate()
        .find_map(|(i, s)| s.triggers.first().map(|&t| (i, t)))
        .expect("some subgraph has a trigger edge");
    model.drop_trigger(consumer, producer);

    let outcome = check_plan_model(&model, &ModelCheckConfig::default());
    assert!(
        outcome.report.contains(codes::MODEL_NONDETERMINISM),
        "dropped trigger is D501:\n{}",
        outcome.report
    );
    let cex = outcome
        .counterexample
        .expect("D501 carries a counterexample");

    let dynamic = check_witness(
        engine.graph(),
        engine.placed(),
        engine.system(),
        &cex,
        &WitnessCheckConfig::default(),
    );
    assert!(
        dynamic.contains(codes::WITNESS_ORDER),
        "static counterexample must reproduce as a dynamic D303 happens-before \
         violation:\n{dynamic}"
    );
}
