//! Schedule-plan round trips: the offline decision serializes, reloads,
//! and reproduces the same engine behaviour — and refuses to apply to a
//! structurally different model.

use duet::core::{Duet, EngineError, SchedulePlan};
use duet::device::DeviceKind;
use duet::prelude::*;
use duet_models::input_feeds;

#[test]
fn plan_roundtrip_reproduces_engine() {
    let model = wide_and_deep(&WideAndDeepConfig::default());
    let original = Duet::builder().build(&model).unwrap();
    let json = original.export_plan().to_json();

    let plan = SchedulePlan::from_json(&json).unwrap();
    let reloaded = Duet::builder().build_with_plan(&model, &plan).unwrap();

    assert_eq!(original.latency_us(), reloaded.latency_us());
    assert_eq!(original.fallback_device(), reloaded.fallback_device());
    let a: Vec<DeviceKind> = original.placed().iter().map(|p| p.device).collect();
    let b: Vec<DeviceKind> = reloaded.placed().iter().map(|p| p.device).collect();
    assert_eq!(a, b);
}

#[test]
fn reloaded_plan_executes_correctly() {
    let model = siamese(&SiameseConfig::small());
    let original = Duet::builder().no_fallback().build(&model).unwrap();
    let plan = original.export_plan();
    let reloaded = Duet::builder()
        .no_fallback()
        .build_with_plan(&model, &plan)
        .unwrap();
    let feeds = input_feeds(reloaded.graph(), 3);
    let out = reloaded.run(&feeds).unwrap();
    let want = reloaded.graph().eval(&feeds).unwrap();
    assert_eq!(out.outputs[&reloaded.graph().outputs()[0]], want[0]);
}

#[test]
fn plan_survives_weight_changes_but_not_architecture_changes() {
    let cfg = SiameseConfig::default();
    let model = siamese(&cfg);
    let plan = Duet::builder().build(&model).unwrap().export_plan();

    // Same architecture, different weights: fine.
    let retrained = siamese(&SiameseConfig {
        seed: 999,
        ..cfg.clone()
    });
    assert!(Duet::builder().build_with_plan(&retrained, &plan).is_ok());

    // Different architecture: refused.
    let deeper = siamese(&SiameseConfig {
        rnn_layers: 2,
        ..cfg
    });
    match Duet::builder().build_with_plan(&deeper, &plan) {
        Err(EngineError::Plan(_)) => {}
        other => panic!("expected plan mismatch, got {other:?}"),
    }
}

#[test]
fn fallback_plans_reload_as_fallback() {
    let model = resnet(&ResNetConfig::default());
    let original = Duet::builder().build(&model).unwrap();
    assert_eq!(original.fallback_device(), Some(DeviceKind::Gpu));
    let plan = original.export_plan();
    assert_eq!(plan.fallback, Some(DeviceKind::Gpu));
    let reloaded = Duet::builder().build_with_plan(&model, &plan).unwrap();
    assert_eq!(reloaded.fallback_device(), Some(DeviceKind::Gpu));
    assert_eq!(reloaded.placed().len(), 1);
}
