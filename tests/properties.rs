//! Property-based tests over randomly generated tensor programs: the
//! partitioner, scheduler, simulator and executor must uphold their
//! invariants for *any* DAG, not just the zoo models.

use std::collections::HashMap;

use duet::compiler::Compiler;
use duet::core::{partition, PhaseKind};
use duet::device::{DeviceKind, SystemModel};
use duet::ir::{Graph, NodeId, Op};
use duet::runtime::{measure_latency, simulate, subgraph_exec_time_us, Placed, SimNoise};
use duet::tensor::Tensor;
use proptest::prelude::*;

/// A recipe for one random DAG node over vectors of a fixed width.
#[derive(Debug, Clone)]
enum NodeSpec {
    Unary { op: u8, input: usize },
    Binary { op: u8, a: usize, b: usize },
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    prop_oneof![
        (0u8..4, any::<prop::sample::Index>()).prop_map(|(op, input)| NodeSpec::Unary {
            op,
            input: input.index(usize::MAX - 1)
        }),
        (
            0u8..3,
            any::<prop::sample::Index>(),
            any::<prop::sample::Index>()
        )
            .prop_map(|(op, a, b)| NodeSpec::Binary {
                op,
                a: a.index(usize::MAX - 1),
                b: b.index(usize::MAX - 1),
            }),
    ]
}

/// Materialise a random, connected, single-input DAG of elementwise ops.
fn build_graph(specs: &[NodeSpec]) -> (Graph, NodeId) {
    let mut g = Graph::new("random");
    let x = g.add_input("x", vec![8]);
    let mut nodes: Vec<NodeId> = vec![g.add_op("seed", Op::Relu, &[x]).unwrap()];
    for (i, spec) in specs.iter().enumerate() {
        let pick = |idx: usize| nodes[idx % nodes.len()];
        let id = match spec {
            NodeSpec::Unary { op, input } => {
                let op = match op {
                    0 => Op::Relu,
                    1 => Op::Tanh,
                    2 => Op::Sigmoid,
                    _ => Op::Scale { factor: 0.5 },
                };
                g.add_op(format!("u{i}"), op, &[pick(*input)]).unwrap()
            }
            NodeSpec::Binary { op, a, b } => {
                let op = match op {
                    0 => Op::Add,
                    1 => Op::Sub,
                    _ => Op::Mul,
                };
                g.add_op(format!("b{i}"), op, &[pick(*a), pick(*b)])
                    .unwrap()
            }
        };
        nodes.push(id);
    }
    // Every node without consumers becomes an output (all sinks exported).
    let sinks: Vec<NodeId> = g
        .compute_ids()
        .into_iter()
        .filter(|&id| g.node(id).outputs.is_empty())
        .collect();
    for s in sinks {
        g.mark_output(s).unwrap();
    }
    (g, x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_is_a_valid_phased_schedule(specs in prop::collection::vec(node_spec(), 1..40)) {
        let (g, _) = build_graph(&specs);
        let part = partition(&g);
        // 1. Exact coverage of compute nodes.
        let mut covered: Vec<NodeId> =
            part.phases.iter().flat_map(|p| p.subgraphs.iter().flatten().copied()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, g.compute_ids());
        // 2. Phase-monotone edges.
        let mut phase_of: HashMap<NodeId, usize> = HashMap::new();
        for (i, ph) in part.phases.iter().enumerate() {
            for sg in &ph.subgraphs {
                for &n in sg {
                    phase_of.insert(n, i);
                }
            }
        }
        for id in g.compute_ids() {
            for &src in &g.node(id).inputs {
                if let Some(&a) = phase_of.get(&src) {
                    prop_assert!(a <= phase_of[&id]);
                }
            }
        }
        // 3. Multi-path subgraphs are mutually independent.
        for ph in part.phases.iter().filter(|p| p.kind == PhaseKind::MultiPath) {
            prop_assert!(ph.subgraphs.len() >= 2);
            for (i, a) in ph.subgraphs.iter().enumerate() {
                for b in ph.subgraphs.iter().skip(i + 1) {
                    for &n in a {
                        for &src in &g.node(n).inputs {
                            prop_assert!(!b.contains(&src));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn simulated_latency_within_physical_bounds(
        specs in prop::collection::vec(node_spec(), 1..30),
        device_bits in any::<u64>(),
    ) {
        let (g, _) = build_graph(&specs);
        let sys = SystemModel::paper_server();
        let compiler = Compiler::default();
        let part = partition(&g);
        let sgs = part.compile(&g, &compiler);
        let placed: Vec<Placed> = sgs
            .into_iter()
            .enumerate()
            .map(|(i, sg)| Placed {
                sg,
                device: if device_bits >> (i % 64) & 1 == 0 {
                    DeviceKind::Cpu
                } else {
                    DeviceKind::Gpu
                },
            })
            .collect();
        let lat = measure_latency(&g, &placed, &sys);
        // Lower bound: the slowest single subgraph on its device.
        let lower = placed
            .iter()
            .map(|p| subgraph_exec_time_us(&sys, p.device, &p.sg))
            .fold(0.0, f64::max);
        // Upper bound: serial sum of everything plus every possible
        // transfer (each boundary edge at most once each way).
        let mut upper: f64 = placed
            .iter()
            .map(|p| subgraph_exec_time_us(&sys, p.device, &p.sg))
            .sum();
        for p in &placed {
            for &src in &p.sg.inputs {
                upper += sys.transfer_time_us(g.node(src).shape.byte_size() as f64);
            }
        }
        for &out in g.outputs() {
            upper += sys.transfer_time_us(g.node(out).shape.byte_size() as f64);
        }
        prop_assert!(lat >= lower - 1e-9, "latency {lat} < lower bound {lower}");
        prop_assert!(lat <= upper + 1e-9, "latency {lat} > upper bound {upper}");
    }

    #[test]
    fn scheduled_execution_matches_reference(specs in prop::collection::vec(node_spec(), 1..25)) {
        let (g, x) = build_graph(&specs);
        let engine = duet::core::Duet::builder()
            .profile_runs(60, 10)
            .no_fallback()
            .build(&g)
            .unwrap();
        let feeds = HashMap::from([(
            engine.graph().input_ids()[0],
            Tensor::randn(vec![8], 1.0, 77),
        )]);
        let outcome = engine.run(&feeds).unwrap();
        let want = engine.graph().eval(&feeds).unwrap();
        for (i, &out) in engine.graph().outputs().iter().enumerate() {
            prop_assert!(outcome.outputs[&out].approx_eq(&want[i], 1e-4));
        }
        let _ = x;
    }

    #[test]
    fn noise_free_sim_deterministic_for_any_schedule(
        specs in prop::collection::vec(node_spec(), 1..20),
    ) {
        let (g, _) = build_graph(&specs);
        let sys = SystemModel::paper_server();
        let compiler = Compiler::default();
        let part = partition(&g);
        let sgs = part.compile(&g, &compiler);
        let placed: Vec<Placed> = sgs
            .into_iter()
            .map(|sg| Placed { sg, device: DeviceKind::Gpu })
            .collect();
        let a = simulate(&g, &placed, &sys, &mut SimNoise::disabled()).latency_us;
        let b = simulate(&g, &placed, &sys, &mut SimNoise::disabled()).latency_us;
        prop_assert_eq!(a, b);
    }
}
