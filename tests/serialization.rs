//! Binary-format round trips across the entire model zoo, and the
//! full save→load→schedule→execute deployment path.

use duet::ir::{decode, encode};
use duet::prelude::*;
use duet_models::{input_feeds, mlp, mobilenet, squeezenet, MlpConfig, MobileNetConfig};

fn small_zoo() -> Vec<duet_ir::Graph> {
    vec![
        wide_and_deep(&WideAndDeepConfig::small()),
        siamese(&SiameseConfig::small()),
        mtdnn(&MtDnnConfig::small()),
        resnet(&ResNetConfig::small()),
        mobilenet(&MobileNetConfig::small()),
        squeezenet(1, 32),
        mlp(&MlpConfig {
            input: 16,
            hidden: 32,
            ..Default::default()
        }),
    ]
}

#[test]
fn every_zoo_model_roundtrips_bitexactly() {
    for g in small_zoo() {
        let back = decode(encode(&g)).unwrap_or_else(|e| panic!("{}: {e}", g.name));
        assert_eq!(back.len(), g.len(), "{}", g.name);
        let feeds = input_feeds(&g, 17);
        let a = g.eval(&feeds).unwrap();
        let b = back.eval(&feeds).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "{}: decoded model diverged", g.name);
        }
    }
}

#[test]
fn deployment_path_save_load_schedule_execute() {
    let g = wide_and_deep(&WideAndDeepConfig::small());
    // "Ship" the model as bytes, then serve it from the decoded copy.
    let artifact = encode(&g);
    let served = decode(artifact).unwrap();
    let engine = Duet::builder().no_fallback().build(&served).unwrap();
    let feeds = input_feeds(engine.graph(), 23);
    let out = engine.run(&feeds).unwrap();
    let want = engine.graph().eval(&feeds).unwrap();
    assert!(out.outputs[&engine.graph().outputs()[0]].approx_eq(&want[0], 1e-5));
}

#[test]
fn schedules_identical_for_original_and_decoded_model() {
    let g = siamese(&SiameseConfig::default());
    let a = Duet::builder().build(&g).unwrap();
    let b = Duet::builder().build(&decode(encode(&g)).unwrap()).unwrap();
    assert_eq!(a.latency_us(), b.latency_us());
    assert_eq!(a.fallback_device(), b.fallback_device());
    // And plans exported from either apply to the other.
    let plan = a.export_plan();
    assert!(Duet::builder()
        .build_with_plan(&decode(encode(&g)).unwrap(), &plan)
        .is_ok());
}

#[test]
fn encoded_size_tracks_parameters() {
    let small = encode(&mlp(&MlpConfig {
        input: 8,
        hidden: 8,
        layers: 1,
        ..Default::default()
    }));
    let big = encode(&mlp(&MlpConfig {
        input: 64,
        hidden: 256,
        layers: 4,
        ..Default::default()
    }));
    assert!(big.len() > 10 * small.len());
}
