//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset of the `Bytes`/`BytesMut`/`Buf`/`BufMut`
//! API the workspace uses (little-endian scalar puts/gets, `freeze`,
//! `copy_to_bytes`). Backed by a plain `Vec<u8>` plus a cursor; no
//! refcounted zero-copy views, which the workspace does not rely on.

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wrap a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Copy the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Sub-view of the remaining bytes (copying; upstream is zero-copy).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let view = &self.data[self.pos..];
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => view.len(),
        };
        Bytes {
            data: view[start..end].to_vec(),
            pos: 0,
        }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, n: usize) {
        assert!(self.pos + n <= self.data.len(), "Bytes: read past end");
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f32_le(&mut self) -> f32;
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.check(1);
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        self.check(2);
        let v = u16::from_le_bytes(self.data[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        self.check(4);
        let v = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        self.check(8);
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.check(len);
        let out = Bytes {
            data: self.data[self.pos..self.pos + len].to_vec(),
            pos: 0,
        };
        self.pos += len;
        out
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Write-side operations (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f32_le(&mut self, v: f32);
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(300);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(1.5);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.copy_to_bytes(3).as_ref(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
