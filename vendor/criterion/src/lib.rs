//! Minimal offline stand-in for `criterion`.
//!
//! Provides the same structural API (`criterion_group!`,
//! `criterion_main!`, groups, `Bencher::iter`, throughput annotations)
//! with a deliberately tiny measurement budget: a warm-up iteration
//! plus a handful of timed iterations capped by wall-clock, printing
//! mean time per iteration. Under `--test` (as passed by `cargo test`
//! for `harness = false` targets) each benchmark runs exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark measurement budget.
const MAX_ITERS: u64 = 5;
const MAX_TIME: Duration = Duration::from_millis(200);

/// Work-size annotation; only echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new(function: impl Display, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{p}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up.
        std::hint::black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && started.elapsed() < MAX_TIME {
            std::hint::black_box(routine());
            iters += 1;
        }
        let mean = started.elapsed() / iters.max(1) as u32;
        println!("    time: {mean:?}/iter over {iters} iters");
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    fn new() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {name}");
        let mut b = Bencher {
            test_mode: self.test_mode,
        };
        f(&mut b);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(n) => println!("  [{}] throughput: {n} bytes", self.name),
            Throughput::Elements(n) => println!("  [{}] throughput: {n} elements", self.name),
        }
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {}/{}", self.name, name);
        let mut b = Bencher {
            test_mode: self.parent.test_mode,
        };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench: {}/{}", self.name, id);
        let mut b = Bencher {
            test_mode: self.parent.test_mode,
        };
        f(&mut b, input);
        self
    }

    pub fn finish(self) {}
}

/// Prevent the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[doc(hidden)]
pub fn __new_criterion() -> Criterion {
    Criterion::new()
}

/// Group benchmark functions under one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::__new_criterion();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
