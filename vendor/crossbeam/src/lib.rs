//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`
//! with the semantics the executor and the serving runtime rely on:
//! MPMC, `Sender` cloneable, `Receiver` usable from several threads by
//! shared reference (`Sync`), `recv`/`recv_timeout` unblocking with
//! `Err` once all senders are gone and the queue drains, and bounded
//! channels whose `try_send` reports `Full` for admission control.
//!
//! Upstream features deliberately not implemented: zero-capacity
//! rendezvous channels (`bounded(0)` panics) and disconnect detection on
//! the send side (receivers share the queue's life here, so `send`
//! never reports `Disconnected`).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        /// `None` for unbounded channels.
        cap: Option<usize>,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed
    /// and empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (This stub never reports it — receivers share the queue's life —
    /// but callers match on the `Result` shape.)
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity; the message comes back.
        Full(T),
        /// All receivers are gone. (This stub never reports it — see the
        /// module docs — but callers match on the upstream shape.)
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(..) => write!(f, "Full(..)"),
                TrySendError::Disconnected(..) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(..) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(..) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message. On an unbounded channel this never blocks;
        /// on a bounded channel it waits for space.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.cap {
                while q.len() >= cap {
                    q = self
                        .inner
                        .not_full
                        .wait(q)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
            q.push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Enqueue without blocking; on a bounded channel at capacity the
        /// message comes straight back as [`TrySendError::Full`].
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block until a message arrives, every sender is dropped, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            let v = q.pop_front();
            if v.is_some() {
                self.inner.not_full.notify_one();
            }
            v
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    /// Blocking iterator over a receiver's messages; ends when every
    /// sender is dropped and the queue drains.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded MPMC channel holding at most `cap` messages.
    /// Zero-capacity rendezvous channels are not supported by this stub.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "this crossbeam stub does not support bounded(0)");
        with_cap(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = 0;
            for _ in 0..100 {
                rx.recv().unwrap();
                got += 1;
            }
            assert_eq!(got, 100);
        });
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full_and_recovers_after_recv() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| tx.send(2).unwrap());
            // The blocked send completes once we pop.
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        });
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn receiver_iterates_until_disconnect() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<usize> = rx.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }
}
