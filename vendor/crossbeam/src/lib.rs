//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the
//! semantics the executor relies on: MPMC, `Sender` cloneable, `Receiver`
//! usable from several threads by shared reference (`Sync`), and `recv`
//! unblocking with `Err` once all senders are gone and the queue drains.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed
    /// and empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (This stub never reports it — receivers share the queue's life —
    /// but callers match on the `Result` shape.)
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug`, so
    // `.expect()` works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = 0;
            for _ in 0..100 {
                rx.recv().unwrap();
                got += 1;
            }
            assert_eq!(got, 100);
        });
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
