//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Poisoned locks propagate the
//! inner value, matching parking_lot's behavior of ignoring panics.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
