//! Minimal offline stand-in for `proptest`.
//!
//! Covers the surface the workspace tests use: `proptest!` with an
//! optional `#![proptest_config(..)]` header, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()`, range and tuple strategies,
//! `.prop_map`, `prop::collection::vec`, `prop::sample::Index`, and
//! `prop_oneof!`. Cases are generated from a per-test deterministic
//! seed (FNV of the test name); there is no shrinking — a failure
//! reports the case number and assertion message directly.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` / `prop::sample` paths, as re-exported by the
/// real crate's prelude.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod sample {
        pub use crate::strategy::Index;
    }
}

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u8..10, v in prop::collection::vec(any::<u64>(), 1..5)) {
///         prop_assert!(v.len() >= 1);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure aborts only this case's
/// closure with a [`TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: `{:?}` == `{:?}`", __a, __b);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
