//! Strategy combinators: how test case values get generated.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, UniformSample};

/// A recipe for generating values of type `Value`.
///
/// Object-safe (`generate` takes a concrete [`SmallRng`]) so that
/// heterogeneous strategies can be boxed for `prop_oneof!`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erase for storage alongside other strategies.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Half-open ranges are strategies (`0u8..6`, `1usize..30`, ...).
impl<T: UniformSample> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformSample + num_step::StepUp> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        T::sample_range(rng, lo, hi.step_up())
    }
}

mod num_step {
    /// One-past-the-end for inclusive ranges.
    pub trait StepUp: Copy {
        fn step_up(self) -> Self;
    }

    macro_rules! step_up_int {
        ($($t:ty),*) => {$(
            impl StepUp for $t {
                fn step_up(self) -> Self {
                    self.checked_add(1).expect("inclusive range end at type max")
                }
            }
        )*};
    }

    step_up_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        // Bounded uniform rather than raw bits: tests want usable
        // magnitudes, not NaN/Inf bit patterns.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        Index(rng.next_u64() as usize)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Deferred index into a collection of not-yet-known length
/// (`prop::sample::Index`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Project onto `0..len`. `len` must be non-zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

/// Length spec for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "vec size range is empty");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = if self.len.lo + 1 >= self.len.hi {
            self.len.lo
        } else {
            rng.gen_range(self.len.lo..self.len.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice across boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let pick = rng.gen_range(0..self.choices.len());
        self.choices[pick].generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_maps_compose() {
        let mut rng = SmallRng::seed_from_u64(3);
        let strat = (0u8..6, any::<Index>()).prop_map(|(op, idx)| (op, idx.index(7)));
        for _ in 0..200 {
            let (op, idx) = strat.generate(&mut rng);
            assert!(op < 6);
            assert!(idx < 7);
        }
    }

    #[test]
    fn vec_respects_len_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let strat = vec(1usize..10, 1..30);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|x| (1..10).contains(x)));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = SmallRng::seed_from_u64(5);
        let strat = OneOf::new(vec![(0u8..1).boxed(), (10u8..11).boxed()]);
        let mut saw = [false; 2];
        for _ in 0..100 {
            match strat.generate(&mut rng) {
                0 => saw[0] = true,
                10 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }
}
