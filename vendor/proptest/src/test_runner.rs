//! Runner support: configuration, case errors, deterministic seeding.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A single failed case; aborts that case, not the whole process,
/// so the macro can attach case context before panicking.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Seed a generator from the test name (FNV-1a), so runs are
/// reproducible without any global state or clock access.
pub fn deterministic_rng(test_name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}
