//! Minimal offline stand-in for the `rand` crate.
//!
//! Deterministic xoshiro256++ generator behind the subset of the rand 0.8
//! API the workspace uses: `SmallRng::seed_from_u64`, `Rng::gen_range`
//! over half-open ranges, `Rng::gen_bool`, and
//! `distributions::Uniform::sample`. Stream values differ from upstream
//! rand, which is fine — every consumer seeds explicitly and only relies
//! on self-consistency.

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::{RngCore, UniformSample};

    /// Types that produce values when sampled with an RNG.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: UniformSample> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new: empty range");
            Uniform { lo, hi }
        }
    }

    impl<T: UniformSample> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..u64::MAX), c.gen_range(0u64..u64::MAX));
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn uniform_distribution_sampling() {
        let mut r = SmallRng::seed_from_u64(5);
        let u = Uniform::new(f32::EPSILON, 1.0f32);
        let mean: f32 = (0..1000).map(|_| u.sample(&mut r)).sum::<f32>() / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }
}
