//! Minimal offline stand-in for `rayon`.
//!
//! Implements the one parallel pattern the tensor kernels use —
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` — on scoped std
//! threads. Chunks are dealt to `available_parallelism()` workers in
//! round-robin order; each worker owns disjoint `&mut` chunks, so the
//! data race freedom argument is the same as rayon's.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

fn worker_count(tasks: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(tasks).max(1)
}

/// Run `f` over `(index, item)` pairs on scoped threads.
fn run_parallel<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let n = items.len();
    if n <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let workers = worker_count(n);
    if workers == 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    // Deal items round-robin so neighbouring (similar-sized) chunks
    // spread across workers.
    let mut per_worker: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        per_worker[i % workers].push((i, item));
    }
    let f = &f;
    std::thread::scope(|scope| {
        for batch in per_worker {
            scope.spawn(move || {
                for (i, item) in batch {
                    f(i, item);
                }
            });
        }
    });
}

/// `par_chunks_mut` entry point (subset of `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be positive"
        );
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_parallel(self.chunks, |_, chunk| f(chunk));
    }
}

/// Enumerated variant: items are `(chunk_index, chunk)`.
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_parallel(self.chunks, |i, chunk| f((i, chunk)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_once() {
        let mut v = vec![0u32; 1037];
        v.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        // Every element written exactly once, with its chunk index.
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, 1 + (i / 64) as u32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = [1.0f32; 8];
        v.par_chunks_mut(100).for_each(|c| {
            for x in c.iter_mut() {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }
}
