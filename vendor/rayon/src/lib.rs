//! Minimal offline stand-in for `rayon`, backed by one persistent global
//! worker pool.
//!
//! Implements the one parallel pattern the tensor kernels use —
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` — by submitting the
//! chunk list as a job to a process-wide pool. Unlike the earlier stand-in
//! (which spawned fresh scoped threads on every call), the pool is created
//! once and pinned: when several subgraphs run kernels concurrently their
//! parallel regions share the same workers instead of multiplying threads,
//! so intra-op parallelism composes with the executor's inter-op device
//! workers without oversubscription.
//!
//! # Sizing
//!
//! The pool holds `threads() - 1` background workers; every submitting
//! thread participates in its own job, so a single caller reaches full
//! width while concurrent callers add at most themselves. The size is
//! resolved once, at first use, from (in priority order) the
//! `DUET_KERNEL_THREADS` environment variable, the first [`configure`]
//! call, or `available_parallelism() - 2` (reserving the
//! `HeterogeneousExecutor`'s two device-worker threads), floored at 1.
//!
//! # Determinism
//!
//! Work items are whole chunks claimed by an atomic counter; each chunk is
//! executed by exactly one thread, and kernels perform every per-element
//! reduction within a single chunk, so results are bit-identical for any
//! pool size — including 1, where jobs run inline on the caller.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    pub use crate::ParallelSliceMut;
}

/// Request a pool width (total threads executing one job, caller included).
/// Effective only before the pool's first use; returns whether it applied.
pub fn configure(threads: usize) -> bool {
    if threads == 0 || POOL.get().is_some() {
        return false;
    }
    let mut req = REQUESTED.lock().unwrap();
    if POOL.get().is_some() {
        return false;
    }
    *req = Some(threads);
    true
}

/// The pool width currently in effect (forces initialization).
pub fn current_num_threads() -> usize {
    pool().threads
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
static REQUESTED: Mutex<Option<usize>> = Mutex::new(None);

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("DUET_KERNEL_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    if let Some(n) = *REQUESTED.lock().unwrap() {
        return n;
    }
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    // Reserve two hardware threads for the executor's device workers.
    hw.saturating_sub(2).max(1)
}

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let threads = default_threads();
        let pool = Arc::new(Pool {
            threads,
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        });
        for w in 0..threads.saturating_sub(1) {
            let p = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("duet-kernel-{w}"))
                .spawn(move || worker_loop(p))
                .expect("spawn kernel pool worker");
        }
        pool
    })
}

struct Pool {
    threads: usize,
    queue: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
}

fn worker_loop(pool: Arc<Pool>) {
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                while q
                    .front()
                    .is_some_and(|j| j.next.load(Ordering::Relaxed) >= j.total)
                {
                    q.pop_front();
                }
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                q = pool.cv.wait(q).unwrap();
            }
        };
        job.work();
    }
}

/// One submitted parallel region: a type-erased item table plus claim and
/// completion counters. `data` points into the submitting caller's stack;
/// it is only dereferenced for claimed indices (`i < total`), and the
/// caller blocks until `done == total`, so the pointer never outlives the
/// frame it refers to.
struct Job {
    data: *const (),
    run_item: unsafe fn(*const (), usize),
    next: AtomicUsize,
    done: AtomicUsize,
    total: usize,
    panicked: AtomicBool,
    finished: Mutex<bool>,
    cv: Condvar,
}

unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
                (self.run_item)(self.data, i)
            }));
            if ok.is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            if self.done.fetch_add(1, Ordering::SeqCst) + 1 == self.total {
                *self.finished.lock().unwrap() = true;
                self.cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut fin = self.finished.lock().unwrap();
        while !*fin {
            fin = self.cv.wait(fin).unwrap();
        }
    }
}

/// Item slot claimed (and taken) by exactly one thread, keyed by the job's
/// atomic `next` counter.
struct ItemSlot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for ItemSlot<T> {}

struct Ctx<'a, T, F> {
    items: &'a [ItemSlot<T>],
    f: &'a F,
}

unsafe fn run_item<T: Send, F: Fn(usize, T) + Sync>(data: *const (), i: usize) {
    let ctx = &*(data as *const Ctx<'_, T, F>);
    let item = (*ctx.items[i].0.get()).take().expect("item claimed twice");
    (ctx.f)(i, item);
}

/// Run `f` over `(index, item)` pairs on the global pool; the caller
/// participates and returns only when every item has completed.
fn run_parallel<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let total = items.len();
    if total == 0 {
        return;
    }
    let p = pool();
    if total == 1 || p.threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<ItemSlot<T>> = items
        .into_iter()
        .map(|t| ItemSlot(UnsafeCell::new(Some(t))))
        .collect();
    let ctx = Ctx {
        items: &slots,
        f: &f,
    };
    let job = Arc::new(Job {
        data: (&ctx as *const Ctx<'_, T, F>).cast(),
        run_item: run_item::<T, F>,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        total,
        panicked: AtomicBool::new(false),
        finished: Mutex::new(false),
        cv: Condvar::new(),
    });
    {
        let mut q = p.queue.lock().unwrap();
        q.push_back(Arc::clone(&job));
    }
    p.cv.notify_all();
    job.work();
    job.wait();
    if job.panicked.load(Ordering::SeqCst) {
        panic!("parallel kernel task panicked");
    }
}

/// `par_chunks_mut` entry point (subset of `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be positive"
        );
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_parallel(self.chunks, |_, chunk| f(chunk));
    }
}

/// Enumerated variant: items are `(chunk_index, chunk)`.
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_parallel(self.chunks, |i, chunk| f((i, chunk)));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_cover_slice_once() {
        let mut v = vec![0u32; 1037];
        v.par_chunks_mut(64).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        // Every element written exactly once, with its chunk index.
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, 1 + (i / 64) as u32);
        }
    }

    #[test]
    fn single_chunk_runs_inline() {
        let mut v = [1.0f32; 8];
        v.par_chunks_mut(100).for_each(|c| {
            for x in c.iter_mut() {
                *x *= 2.0;
            }
        });
        assert!(v.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn nested_parallel_regions_complete() {
        // A chunk body that itself submits a job must not deadlock: the
        // inner caller participates in its own job.
        let mut v = vec![0u32; 256];
        v.par_chunks_mut(64).for_each(|c| {
            let mut inner = vec![0u32; 128];
            inner.par_chunks_mut(16).for_each(|ic| {
                for x in ic.iter_mut() {
                    *x += 1;
                }
            });
            let s: u32 = inner.iter().sum();
            for x in c.iter_mut() {
                *x = s;
            }
        });
        assert!(v.iter().all(|&x| x == 128));
    }
}
