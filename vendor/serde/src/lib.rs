//! Minimal offline stand-in for `serde`.
//!
//! Real serde abstracts over data formats with a visitor architecture;
//! the workspace only ever serializes to and from JSON, so this stub
//! collapses the model: [`Serialize`] renders straight into a JSON
//! [`Value`] tree and [`Deserialize`] reads one back. The derive macros
//! (re-exported from `serde_derive`) cover the struct/enum shapes the
//! workspace defines: named-field structs (with `#[serde(default)]` /
//! `#[serde(default = "path")]`) and unit-variant enums.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Failure while reading a [`Value`] into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeserializeError {
    msg: String,
}

impl DeserializeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeserializeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeserializeError {}

/// Render self as a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild self from a JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeserializeError>;
}

// --- Serialize impls for primitives and std containers. ---

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::from_u64(v as u64))
                } else {
                    Value::Number(Number::from_i64(v))
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// --- Deserialize impls. ---

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeserializeError::custom(format!(
                        "expected {} got {v:?}", stringify!($t)
                    )))
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeserializeError> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| DeserializeError::custom(format!(
                        "expected {} got {v:?}", stringify!($t)
                    )))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        v.as_f64()
            .ok_or_else(|| DeserializeError::custom(format!("expected f64 got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeserializeError::custom(format!(
                "expected bool got {other:?}"
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeserializeError::custom(format!(
                "expected string got {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeserializeError::custom(format!(
                "expected array got {other:?}"
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeserializeError> {
        Ok(v.clone())
    }
}
