//! JSON value tree shared by the `serde` and `serde_json` stand-ins.
//!
//! [`Number`] keeps exact 64-bit integers as `i64`/`u64` variants rather
//! than collapsing to `f64` — plan fingerprints are FNV `u64`s above
//! 2^53 and must round-trip through JSON bit-exactly.

use std::fmt;

/// Order-preserving string-keyed map (JSON object).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

/// JSON number with exact integer variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn from_i64(v: i64) -> Self {
        Number::I64(v)
    }

    pub fn from_u64(v: u64) -> Self {
        Number::U64(v)
    }

    pub fn from_f64(v: f64) -> Self {
        Number::F64(v)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::I64(v) => u64::try_from(v).ok(),
            Number::U64(v) => Some(v),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(v) => Some(v as f64),
            Number::U64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // Keep a decimal point so the value re-parses as a float.
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact single-line JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Pretty-printed JSON with two-space indent.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            // compact arrays stay tight
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

// --- From conversions (feed the json! macro and ad-hoc construction). ---

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::U64(v as u64))
            }
        }
    )*};
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}

value_from_uint!(u8, u16, u32, u64, usize);
value_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F64(v as f64))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

// --- PartialEq against literals so tests can write `v["tid"] == 1`. ---

macro_rules! value_eq_num {
    ($($t:ty => $conv:ident),*) => {$(
        impl PartialEq<$t> for Value {
            #[allow(clippy::cmp_owned)]
            fn eq(&self, other: &$t) -> bool {
                Value::from(*other) == *self || self.$conv() == Some(*other as _)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool {
                **self == *other
            }
        }
    )*};
}

value_eq_num!(
    i32 => as_i64,
    i64 => as_i64,
    u32 => as_u64,
    u64 => as_u64,
    usize => as_u64
);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<f64> for &Value {
    fn eq(&self, other: &f64) -> bool {
        **self == *other
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

// --- Indexing: `v["key"]` and `v[0]` (panic-free, yields Null). ---

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

// --- Parser. ---

/// JSON parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(msg: &str, offset: usize) -> ParseError {
    ParseError {
        msg: msg.to_string(),
        offset,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("bad utf8", start))?;
    if text.is_empty() || text == "-" {
        return Err(err("invalid number", start));
    }
    let number = if is_float {
        Number::F64(text.parse().map_err(|_| err("invalid float", start))?)
    } else if let Ok(u) = text.parse::<u64>() {
        Number::U64(u)
    } else if let Ok(i) = text.parse::<i64>() {
        Number::I64(i)
    } else {
        Number::F64(
            text.parse()
                .map_err(|_| err("number out of range", start))?,
        )
    };
    Ok(Value::Number(number))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| err("bad utf8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '{'
    let mut map = Map::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err("expected object key", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_fingerprint_roundtrip_exact() {
        // FNV fingerprints exceed 2^53; exactness is load-bearing.
        let fp: u64 = 0xcbf2_9ce4_8422_2325;
        let v = Value::Number(Number::from_u64(fp));
        let text = v.render_compact();
        let back = parse(&text).unwrap();
        assert_eq!(back.as_u64(), Some(fp));
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": "hi\n"}, "d": null}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["b"]["c"], "hi\n");
        assert!(v["d"].is_null());
    }

    #[test]
    fn pretty_roundtrip() {
        let v = parse(r#"{"x":[{"y":1},{"y":2}],"z":true}"#).unwrap();
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn literal_equality() {
        let v = parse(r#"{"tid": 1, "name": "fold"}"#).unwrap();
        assert!(v["tid"] == 1);
        assert!(v["name"] == "fold");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
    }
}
