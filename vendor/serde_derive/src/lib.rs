//! Minimal offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote`) and emits impl
//! blocks as source text. Supported shapes — the full set the workspace
//! derives on:
//!
//! - structs with named fields, including `#[serde(default)]` and
//!   `#[serde(default = "path")]` field attributes; `Option<T>` fields
//!   are implicitly optional (missing key -> `None`), matching serde;
//! - enums whose variants are all unit variants, serialized as the
//!   variant-name string.
//!
//! Anything else (tuple structs, data-carrying variants, generics)
//! panics at derive time with a clear message rather than silently
//! producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    is_option: bool,
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // visibility / modifiers like `pub`
            }
            Some(TokenTree::Group(_)) => {} // pub(crate)
            Some(other) => panic!("serde_derive: unexpected token `{other}`"),
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected item name"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: tuple/unit structs are not supported (derive on `{name}`)")
            }
            Some(_) => {} // e.g. where-clause tokens; generics unsupported but skipped
            None => panic!("serde_derive: expected braced body for `{name}`"),
        }
    };
    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_fields(body),
        }
    } else {
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Skip (or, with `on_serde`, inspect) a run of `#[...]` attributes.
fn skip_attrs(tokens: &mut Tokens) {
    collect_attrs(tokens);
}

/// Consume leading attributes; return the `#[serde(...)]` default spec if present.
fn collect_attrs(tokens: &mut Tokens) -> Option<Option<String>> {
    let mut default = None;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        let Some(TokenTree::Group(g)) = tokens.next() else {
            panic!("serde_derive: malformed attribute");
        };
        if let Some(d) = parse_serde_default(g.stream()) {
            default = Some(d);
        }
    }
    default
}

/// For `serde(default)` / `serde(default = "path")` attribute bodies,
/// return the default spec; otherwise `None`.
fn parse_serde_default(attr: TokenStream) -> Option<Option<String>> {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return None;
    };
    let mut args = args.stream().into_iter();
    match args.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        Some(other) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        None => return None,
    }
    match args.next() {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match args.next() {
            Some(TokenTree::Literal(lit)) => {
                let text = lit.to_string();
                let path = text
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or_else(|| {
                        panic!("serde_derive: default path must be a string literal, got {text}")
                    })
                    .to_string();
                Some(Some(path))
            }
            _ => panic!("serde_derive: expected string after `default =`"),
        },
        Some(other) => panic!("serde_derive: unsupported serde attribute token `{other}`"),
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let default = collect_attrs(&mut tokens);
        // visibility
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, got `{other}`"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive: expected `:` after field `{name}`"),
        }
        // Consume the type up to a top-level comma; only the leading
        // ident matters (to spot `Option<..>`). Angle brackets arrive as
        // bare `<`/`>` puncts, so track their depth.
        let is_option =
            matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, got `{other}`"),
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(_) => {
                panic!("serde_derive: only unit enum variants are supported (variant `{name}`)")
            }
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut body = String::new();
            for f in fields {
                body.push_str(&format!(
                    "map.insert(\"{0}\", ::serde::Serialize::to_value(&self.{0}));",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         let mut map = ::serde::Map::new();\
                         {body}\
                         ::serde::Value::Object(map)\
                     }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let fallback = match (&f.default, f.is_option) {
                    (Some(Some(path)), _) => format!("{path}()"),
                    (Some(None), _) => "::std::default::Default::default()".to_string(),
                    (None, true) => "::std::option::Option::None".to_string(),
                    (None, false) => format!(
                        "return ::std::result::Result::Err(\
                             ::serde::DeserializeError::custom(\
                                 \"{name}: missing field `{0}`\"))",
                        f.name
                    ),
                };
                inits.push_str(&format!(
                    "{0}: match obj.get(\"{0}\") {{\
                         ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\
                         ::std::option::Option::None => {{ {fallback} }}\
                     }},",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value)\
                         -> ::std::result::Result<Self, ::serde::DeserializeError> {{\
                         let obj = match v.as_object() {{\
                             ::std::option::Option::Some(o) => o,\
                             ::std::option::Option::None =>\
                                 return ::std::result::Result::Err(\
                                     ::serde::DeserializeError::custom(\
                                         \"expected object for {name}\")),\
                         }};\
                         ::std::result::Result::Ok({name} {{ {inits} }})\
                     }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&format!(
                    "::std::option::Option::Some(\"{v}\") =>\
                         ::std::result::Result::Ok({name}::{v}),"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value)\
                         -> ::std::result::Result<Self, ::serde::DeserializeError> {{\
                         match v.as_str() {{\
                             {arms}\
                             _ => ::std::result::Result::Err(\
                                 ::serde::DeserializeError::custom(\
                                     \"unknown variant for {name}\")),\
                         }}\
                     }}\
                 }}"
            )
        }
    }
}
