//! Minimal offline stand-in for `serde_json`.
//!
//! The [`Value`] tree, parser, and printer live in the sibling `serde`
//! stub (one shared data model); this crate adds the familiar
//! `serde_json` entry points: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`Error`], and a [`json!`] macro supporting nested
//! object/array literals with arbitrary expression values.

pub use serde::value::{Map, Number, Value};

/// Serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Compact single-line JSON for any serializable value.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::value::parse(s).map_err(|e| Error::new(e.to_string()))?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[doc(hidden)]
pub fn __value_of<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from a JSON-shaped literal.
///
/// Supports `null`, nested `{ "key": value }` objects (string-literal
/// keys), `[ ... ]` arrays, and arbitrary serializable expressions in
/// value position. Trailing commas are accepted.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push, clippy::redundant_closure_call)]
        let __json_arr = (|| {
            #[allow(unused_mut)]
            let mut __json_items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_elems!(__json_items () $($tt)*);
            __json_items
        })();
        $crate::Value::Array(__json_arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __json_map = $crate::Map::new();
        $crate::json_entries!(__json_map $($tt)*);
        $crate::Value::Object(__json_map)
    }};
    ($other:expr) => { $crate::__value_of(&$other) };
}

/// Internal: munch `"key": value` pairs into `$map`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident) => {};
    // Nested-structure and null values dispatch straight back to json!.
    ($map:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::Value::Null);
        $crate::json_entries!($map $($($rest)*)?);
    };
    ($map:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_entries!($map $($($rest)*)?);
    };
    ($map:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_entries!($map $($($rest)*)?);
    };
    // Expression values: accumulate tokens until a top-level comma.
    ($map:ident $key:literal : $($rest:tt)*) => {
        $crate::json_entry_value!($map $key () $($rest)*);
    };
}

/// Internal: accumulate one expression value for `json_entries!`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entry_value {
    ($map:ident $key:literal ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert($key, $crate::__value_of(&($($val)+)));
        $crate::json_entries!($map $($rest)*);
    };
    ($map:ident $key:literal ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_entry_value!($map $key ($($val)* $next) $($rest)*);
    };
    ($map:ident $key:literal ($($val:tt)+)) => {
        $map.insert($key, $crate::__value_of(&($($val)+)));
    };
}

/// Internal: munch array elements into `$items`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($items:ident ()) => {};
    ($items:ident () null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_elems!($items () $($($rest)*)?);
    };
    ($items:ident () { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($items () $($($rest)*)?);
    };
    ($items:ident () [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($items () $($($rest)*)?);
    };
    ($items:ident ($($val:tt)+) , $($rest:tt)*) => {
        $items.push($crate::__value_of(&($($val)+)));
        $crate::json_elems!($items () $($rest)*);
    };
    ($items:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_elems!($items ($($val)* $next) $($rest)*);
    };
    ($items:ident ($($val:tt)+)) => {
        $items.push($crate::__value_of(&($($val)+)));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_nested() {
        fn ms(us: f64) -> f64 {
            us / 1000.0
        }
        let name = String::from("wide_and_deep");
        let fallback: Option<String> = None;
        let v = json!({
            "model": name,
            "latency_ms": ms(1500.0),
            "fallback": fallback,
            "inner": { "ops": 12, "tags": [1, 2, 3] },
            "items": (0..3).map(|i| json!({ "i": i })).collect::<Vec<_>>(),
        });
        assert_eq!(v["model"], "wide_and_deep");
        assert_eq!(v["latency_ms"], 1.5);
        assert!(v["fallback"].is_null());
        assert_eq!(v["inner"]["ops"], 12);
        assert_eq!(v["inner"]["tags"][2], 3);
        assert_eq!(v["items"].as_array().unwrap().len(), 3);
        assert_eq!(v["items"][1]["i"], 1);
    }

    #[test]
    fn json_macro_expr_and_array_forms() {
        let series = vec![json!({ "a": 1 }), json!({ "a": 2 })];
        let v = json!(series);
        assert_eq!(v.as_array().unwrap().len(), 2);
        let arr = json!([1, "two", 3.0, null, [4]]);
        assert_eq!(arr[0], 1);
        assert_eq!(arr[1], "two");
        assert_eq!(arr[2], 3.0);
        assert!(arr[3].is_null());
        assert_eq!(arr[4][0], 4);
    }

    #[test]
    fn string_roundtrip() {
        let v = json!({ "fp": 0xdead_beef_dead_beefu64, "neg": -5, "list": [1.25] });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["fp"].as_u64(), Some(0xdead_beef_dead_beefu64));
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn from_str_error_reported() {
        let r: Result<Value, Error> = from_str("{nope}");
        assert!(r.is_err());
    }
}
